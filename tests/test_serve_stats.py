"""Serve telemetry: report numbers, rendering, and the Perfetto track."""

from __future__ import annotations

import json

import pytest

from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.obs import build_trace, validate_trace
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    merge_serve_track,
    serve_trace_events,
    summarize,
    synthetic_workload,
)
from repro.serve.stats import SERVE_PID, _percentiles

N = 1 << 12
SPEC = p100_nvlink_node(2)


@pytest.fixture(scope="module")
def served():
    cache = PlanCache(SPEC, autotune=False)
    cl = VirtualCluster(SPEC, execute=False)
    sched = ServeScheduler(cl, Batcher(cache, max_batch=4),
                           queue=AdmissionQueue(capacity=64))
    sched.run(synthetic_workload(12, rate=1e5, sizes={N: 1.0}, seed=3))
    return cl, sched


class TestPercentiles:
    def test_known_values(self):
        # nearest-rank: p99 of 100 samples is the 99th order statistic,
        # an observed value — not interpolated toward the outlier
        pct = _percentiles([1.0] * 99 + [101.0])
        assert pct["p50"] == 1.0
        assert pct["p99"] == 1.0
        pct = _percentiles([1.0] * 98 + [50.0, 101.0])
        assert pct["p99"] == 50.0

    def test_nearest_rank_is_an_observed_value(self):
        xs = [0.7, 1.3, 2.9, 0.2, 5.1, 4.4, 3.8]
        pct = _percentiles(xs)
        assert all(v in xs for v in pct.values())
        assert pct["p99"] == max(xs)  # ceil(0.99 * 7) = 7 -> the max

    def test_single_sample(self):
        assert _percentiles([2.5]) == {"p50": 2.5, "p95": 2.5, "p99": 2.5}

    def test_empty(self):
        assert _percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestReport:
    def test_summary_numbers(self, served):
        _, sched = served
        rep = summarize(sched)
        assert rep.completed == 12 and rep.batches == len(sched.batches)
        assert rep.throughput == pytest.approx(12 / sched.wall_time)
        assert 0.0 < rep.latency["p50"] <= rep.latency["p95"] <= rep.latency["p99"]
        assert rep.mean_batch_size >= 1.0
        assert rep.searches == 0  # autotune disabled in the fixture

    def test_render_and_json(self, served):
        _, sched = served
        rep = summarize(sched)
        text = rep.render()
        for token in ("p50", "p95", "p99", "throughput", "wisdom", "batches"):
            assert token in text
        doc = json.loads(rep.to_json())
        assert doc["completed"] == 12 and "latency_by_class" in doc


class TestPerfettoTrack:
    def test_events_validate_when_merged(self, served):
        cl, sched = served
        doc = merge_serve_track(build_trace(cl.ledger, SPEC), sched)
        assert validate_trace(doc) == []

    def test_track_shape(self, served):
        _, sched = served
        events = serve_trace_events(sched)
        assert SPEC.num_devices <= SERVE_PID  # device pids never collide
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(spans) == len(sched.batches)
        assert len(counters) == len(sched.queue.depth_samples)
        assert {e["name"] for e in metas} == {"process_name", "thread_name"}
        assert all(e["pid"] == SERVE_PID for e in events)
        assert all(e["dur"] >= 0 for e in spans)


class TestDeadlineMisses:
    def _run(self, targets):
        cache = PlanCache(SPEC, autotune=False)
        cl = VirtualCluster(SPEC, execute=False)
        sched = ServeScheduler(cl, Batcher(cache, max_batch=4),
                               queue=AdmissionQueue(capacity=64),
                               deadline_targets=targets)
        sched.run(synthetic_workload(12, rate=1e5, sizes={N: 1.0}, seed=3))
        return summarize(sched)

    def test_generous_targets_miss_nothing(self):
        rep = self._run({"interactive": 10.0, "batch": 10.0})
        assert rep.deadline_misses == {"interactive": 0, "batch": 0}
        assert "deadline miss  interactive 0, batch 0" in rep.render()

    def test_misses_counted_per_class(self):
        # interactive target impossibly tight, batch target generous:
        # every interactive completion misses, no batch completion does
        rep = self._run({"interactive": 1e-9, "batch": 10.0})
        assert rep.deadline_misses["batch"] == 0
        assert rep.deadline_misses["interactive"] > 0

    def test_miss_counts_match_completions(self):
        rep = self._run({"interactive": 1e-9, "batch": 1e-9})
        assert (rep.deadline_misses["interactive"]
                + rep.deadline_misses["batch"] == rep.completed)
        assert rep.deadline_misses["interactive"] > 0
        assert rep.deadline_misses["batch"] > 0

    def test_json_carries_per_class_misses(self):
        rep = self._run({"interactive": 1e-9, "batch": 10.0})
        doc = json.loads(rep.to_json())
        assert doc["deadline_misses"]["interactive"] > 0
        assert doc["deadline_misses"]["batch"] == 0


class TestShedDepthCounter:
    def test_counter_track_pins_at_capacity_on_shed(self):
        """Golden: the Perfetto depth counter shows the queue pinned at
        capacity at the instant of every shed arrival."""
        cache = PlanCache(SPEC, autotune=False)
        cl = VirtualCluster(SPEC, execute=False)
        sched = ServeScheduler(cl, Batcher(cache, max_batch=1),
                               queue=AdmissionQueue(capacity=2),
                               max_inflight=1)
        sched.run(synthetic_workload(12, rate=1e6, sizes={N: 1.0}, seed=3))
        assert sum(sched.queue.shed.values()) > 0
        events = serve_trace_events(sched)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == len(sched.queue.depth_samples)
        # shed instants sample the counter at full capacity
        assert any(e["args"]["depth"] == 2 for e in counters)
        doc = merge_serve_track(build_trace(cl.ledger, SPEC), sched)
        assert validate_trace(doc) == []
