import numpy as np
import pytest

from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink


@pytest.fixture
def traced_cluster():
    cl = VirtualCluster(dual_p100_nvlink())
    e = cl.launch(0, "S2M", "batched_gemm", 1e9, 1e6, np.float64)
    cl.sendrecv(0, 1, 1e7, "COMM-S", after=[e])
    cl.launch(1, "S2T", "custom", 1e9, 1e6, np.float64)
    cl.alltoall(1e7, "COMM-MB")
    return cl


class TestProfile:
    def test_contains_devices_and_streams(self, traced_cluster):
        out = traced_cluster.trace().render_profile(width=60)
        assert "dev0:" in out and "dev1:" in out
        assert "compute" in out

    def test_comm_marked_with_tilde(self, traced_cluster):
        out = traced_cluster.trace().render_profile(width=60)
        assert "~" in out

    def test_legend(self, traced_cluster):
        out = traced_cluster.trace().render_profile(width=60)
        assert "legend:" in out
        assert "S=S2M" in out

    def test_device_filter(self, traced_cluster):
        out = traced_cluster.trace().render_profile(width=60, devices=[0])
        assert "dev1:" not in out

    def test_wall_time_positive(self, traced_cluster):
        assert traced_cluster.trace().wall_time() > 0


class TestSummary:
    def test_stage_summary_rows(self, traced_cluster):
        table = traced_cluster.trace().stage_summary()
        text = table.render()
        assert "S2M" in text and "S2T" in text and "COMM-MB" in text

    def test_compute_vs_comm_split(self, traced_cluster):
        tr = traced_cluster.trace()
        assert tr.compute_time() > 0
        assert tr.comm_time() > 0

    def test_per_device_filter(self, traced_cluster):
        tr = traced_cluster.trace()
        assert tr.compute_time(0) > 0
        assert tr.compute_time(0) != tr.compute_time()


class TestProfileEdgeCases:
    def test_empty_ledger_renders(self):
        from repro.machine.ledger import Ledger
        from repro.machine.trace import ExecutionTrace

        tr = ExecutionTrace(Ledger(), dual_p100_nvlink())
        out = tr.render_profile(width=60)
        assert isinstance(out, str)
        assert tr.wall_time() == 0.0

    def test_single_device(self):
        from repro.machine.spec import p100_nvlink_node

        cl = VirtualCluster(p100_nvlink_node(1), execute=False)
        cl.launch(0, "S2M", "batched_gemm", 1e9, 1e6, np.float64)
        out = cl.trace().render_profile(width=60)
        assert "dev0" in out
        assert "dev1" not in out

    def test_zero_duration_op_renders(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        cl.launch(0, "S2M", "batched_gemm", 1e9, 1e6, np.float64)
        cl.host_op(0, "noop", lambda devs: None)
        out = cl.trace().render_profile(width=60)
        assert "S2M"[0] in out

    def test_hazards_accessor(self, traced_cluster):
        rep = traced_cluster.trace().hazards()
        assert rep.ok
        assert rep.num_ops == len(traced_cluster.ledger)
