"""The fused M2L+L2L execution path (Section 5.3's suggested fusion)."""

import numpy as np
import pytest

from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry, FmmOperators
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node


def _pair(G, M=512, P=8, ML=16, B=3, Q=16, rng=None):
    ops = FmmOperators.create(M=M, P=P, ML=ML, B=B, Q=Q, G=G)
    S = rng.uniform(-1, 1, (P, M)) + 1j * rng.uniform(-1, 1, (P, M))
    cl_s = VirtualCluster(p100_nvlink_node(G))
    d_s = DistributedFMM(ops, cl_s)
    d_s.run(S)
    cl_f = VirtualCluster(p100_nvlink_node(G))
    d_f = DistributedFMM(ops, cl_f, fuse_m2l_l2l=True)
    d_f.run(S)
    return (cl_s, d_s), (cl_f, d_f)


class TestFusion:
    @pytest.mark.parametrize("G", [1, 2, 4])
    def test_identical_numerics(self, G, rng):
        (cl_s, d_s), (cl_f, d_f) = _pair(G, rng=rng)
        np.testing.assert_array_equal(d_s.gather(), d_f.gather())

    def test_fewer_launches(self, rng):
        (cl_s, _), (cl_f, _) = _pair(2, rng=rng)
        # L - B = 2 levels: 2 M2L + 2 L2L become 2 fused kernels
        assert cl_f.ledger.launch_count(device=0) == cl_s.ledger.launch_count(device=0) - 2

    def test_fewer_memory_ops(self, rng):
        (cl_s, _), (cl_f, _) = _pair(2, rng=rng)
        assert cl_f.ledger.total("mops") < cl_s.ledger.total("mops")

    def test_same_comm(self, rng):
        (cl_s, _), (cl_f, _) = _pair(2, rng=rng)
        assert cl_f.ledger.total("comm_bytes") == pytest.approx(
            cl_s.ledger.total("comm_bytes")
        )

    def test_same_total_flops(self, rng):
        (cl_s, _), (cl_f, _) = _pair(2, rng=rng)
        assert cl_f.ledger.total("flops") == pytest.approx(cl_s.ledger.total("flops"))

    def test_timing_only_mode(self):
        geom = FmmGeometry.create(M=1 << 16, P=64, ML=64, B=3, Q=16, G=2)
        cl_s = VirtualCluster(dual_p100_nvlink(), execute=False)
        DistributedFMM(geom, cl_s).run(staged=True)
        cl_f = VirtualCluster(dual_p100_nvlink(), execute=False)
        DistributedFMM(geom, cl_f, fuse_m2l_l2l=True).run(staged=True)
        assert cl_f.wall_time() <= cl_s.wall_time()

    def test_fused_kernel_names(self, rng):
        (_, _), (cl_f, _) = _pair(2, rng=rng)
        names = set(cl_f.ledger.time_by_name())
        assert any(n.startswith("M2L+L2L-") for n in names)
        assert not any(n.startswith("L2L-") for n in names)

    def test_l_equals_b_degenerates(self, rng):
        """No hierarchical levels: fusion has nothing to fuse."""
        ops = FmmOperators.create(M=128, P=8, ML=16, B=3, Q=16, G=2)
        S = rng.uniform(-1, 1, (8, 128)) + 0j
        cl = VirtualCluster(p100_nvlink_node(2))
        d = DistributedFMM(ops, cl, fuse_m2l_l2l=True)
        d.run(S)
        ref_ops = FmmOperators.create(M=128, P=8, ML=16, B=3, Q=16)
        from repro.fmm.batched import BatchedFMM

        Tref, _ = BatchedFMM(ref_ops).apply(S)
        assert np.linalg.norm(d.gather() - Tref) / np.linalg.norm(Tref) < 1e-13
