import numpy as np
import pytest

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_relative_error
from repro.model.error import (
    choose_q,
    predicted_error,
    speedup_from_reduced_q,
)
from repro.util.prng import random_signal
from repro.util.validation import ParameterError


class TestPredictedError:
    def test_monotone_until_floor(self):
        errs = [predicted_error(Q) for Q in range(2, 25)]
        assert all(b <= a for a, b in zip(errs, errs[1:]))

    def test_floor_double(self):
        assert predicted_error(24) == pytest.approx(7e-16)

    def test_floor_single(self):
        assert predicted_error(24, "complex64") == pytest.approx(4e-8)

    def test_matches_measured_sweep(self):
        """The model must track the real Figure 9 sweep within ~one
        order of magnitude across the convergent range."""
        x = random_signal(1 << 12, seed=3)
        for Q in (4, 8, 12, 16):
            plan = FmmFftPlan.create(N=1 << 12, P=16, ML=16, B=2, Q=Q)
            measured = fmmfft_relative_error(x, plan)
            ratio = predicted_error(Q) / max(measured, 1e-300)
            assert 0.1 < ratio < 30.0, (Q, measured, predicted_error(Q))

    def test_rejects_bad_q(self):
        with pytest.raises(ParameterError):
            predicted_error(0)


class TestChooseQ:
    @pytest.mark.parametrize("tol,expected_band", [
        (1e-4, (4, 6)), (1e-6, (6, 10)), (1e-10, (10, 14)), (1e-13, (14, 18)),
    ])
    def test_reasonable_orders(self, tol, expected_band):
        q = choose_q(tol)
        assert expected_band[0] <= q <= expected_band[1]

    def test_even_by_default(self):
        for tol in (1e-3, 1e-5, 1e-9, 1e-12):
            assert choose_q(tol) % 2 == 0

    def test_odd_allowed(self):
        qs = {choose_q(10.0**-k, even=False) for k in range(3, 13)}
        assert any(q % 2 == 1 for q in qs)

    def test_chosen_q_actually_meets_tolerance(self):
        """End-to-end: the order the model picks delivers the accuracy."""
        x = random_signal(1 << 12, seed=4)
        for tol in (1e-4, 1e-7, 1e-11):
            q = choose_q(tol)
            plan = FmmFftPlan.create(N=1 << 12, P=16, ML=16, B=2, Q=q)
            assert fmmfft_relative_error(x, plan) < tol

    def test_single_precision_floor_respected(self):
        with pytest.raises(ParameterError):
            choose_q(1e-12, "complex64")

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            choose_q(0.0)


class TestReducedQSpeedup:
    def test_paper_band(self):
        """Section 6.3.4: 'FFTs that produce less accurate results are
        then potentially faster by 1.5x' — e.g. Q=16 -> Q=6-8."""
        assert 1.1 < speedup_from_reduced_q(16, 8) < 1.6

    def test_identity(self):
        assert speedup_from_reduced_q(16, 16) == pytest.approx(1.0)

    def test_rejects_increase(self):
        with pytest.raises(ParameterError):
            speedup_from_reduced_q(8, 16)
