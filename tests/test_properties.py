"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.factorization import apply_perm_mp, perm_block_to_cyclic
from repro.fftcore.bluestein import fft_bluestein
from repro.fftcore.stockham import fft_pow2
from repro.fmm.chebyshev import cheb_points, lagrange_eval
from repro.fmm.interaction import coverage_map
from repro.dfft.layout import BlockRows
from repro.model.vfunc import v_levels, v_levels_exact
from repro.util.bitmath import ceil_div, ilog2, is_pow2, next_pow2, pow2_divisors, split_pow2

pow2s = st.integers(min_value=0, max_value=12).map(lambda k: 1 << k)
small_ints = st.integers(min_value=1, max_value=4096)


class TestBitmathProperties:
    @given(small_ints)
    def test_next_pow2_bounds(self, n):
        p = next_pow2(n)
        assert is_pow2(p) and p >= n and p < 2 * n

    @given(small_ints, st.integers(min_value=1, max_value=100))
    def test_ceil_div_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b

    @given(small_ints)
    def test_split_pow2_reconstructs(self, n):
        odd, k = split_pow2(n)
        assert odd * (1 << k) == n and odd % 2 == 1

    @given(pow2s)
    def test_ilog2_inverse(self, n):
        assert 1 << ilog2(n) == n

    @given(small_ints)
    def test_pow2_divisors_divide(self, n):
        for d in pow2_divisors(n):
            assert n % d == 0 and is_pow2(d)


class TestFftProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**31 - 1))
    def test_parseval_pow2(self, q, seed):
        n = 1 << q
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        X = fft_pow2(x)
        assert np.sum(np.abs(X) ** 2) / n == pytest.approx(np.sum(np.abs(x) ** 2), rel=1e-9)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=2, max_value=200), st.integers(0, 2**31 - 1))
    def test_bluestein_inversion(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = fft_bluestein(fft_bluestein(x, -1), +1) / n
        assert np.abs(y - x).max() < 1e-7

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(0, 2**31 - 1),
           st.integers(min_value=0, max_value=63))
    def test_shift_theorem(self, q, seed, shift):
        n = 1 << q
        shift = shift % n
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        k = np.arange(n)
        lhs = fft_pow2(np.roll(x, shift))
        rhs = fft_pow2(x) * np.exp(-2j * np.pi * shift * k / n)
        assert np.abs(lhs - rhs).max() < 1e-8


class TestPermutationProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.integers(1, 32), st.integers(1, 32))
    def test_perm_is_bijection(self, M, P):
        idx = perm_block_to_cyclic(M, P)
        assert sorted(idx) == list(range(M * P))

    @settings(deadline=None, max_examples=40)
    @given(st.integers(1, 16), st.integers(1, 16), st.integers(0, 2**31 - 1))
    def test_perm_inverse(self, M, P, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(M * P)
        assert np.array_equal(apply_perm_mp(apply_perm_mp(x, M, P), P, M), x)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(1, 12), st.integers(1, 12))
    def test_perm_mp_equals_reshape_transpose(self, M, P):
        x = np.arange(M * P)
        np.testing.assert_array_equal(
            apply_perm_mp(x, M, P), x.reshape(M, P).T.ravel()
        )


class TestChebyshevProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(2, 20), st.floats(-1.0, 1.0))
    def test_partition_of_unity(self, Q, z):
        L = lagrange_eval(Q, np.array([z]))
        assert L.sum() == pytest.approx(1.0, abs=1e-8)

    @settings(deadline=None, max_examples=30)
    @given(st.integers(2, 16), st.integers(0, 2**31 - 1))
    def test_interpolation_exact_on_random_poly(self, Q, seed):
        rng = np.random.default_rng(seed)
        coeffs = rng.standard_normal(Q)  # degree < Q
        f = np.polynomial.polynomial.Polynomial(coeffs)
        z = np.linspace(-1, 1, 13)
        L = lagrange_eval(Q, z)
        assert np.abs(f(cheb_points(Q)) @ L - f(z)).max() < 1e-6


class TestInteractionProperties:
    @settings(deadline=None, max_examples=12)
    @given(st.integers(2, 6), st.integers(2, 6))
    def test_exact_cover(self, L, B):
        if B > L:
            L, B = B, L
        cover = coverage_map(L, B)
        assert set(cover.values()) == {1}
        assert len(cover) == (1 << L) ** 2


class TestLayoutProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 4).map(lambda k: 1 << k),
           st.integers(0, 5), st.integers(0, 5), st.integers(0, 2**31 - 1))
    def test_scatter_gather_roundtrip(self, G, rq, cq, seed):
        rows = G * (1 << rq)
        cols = G * (1 << cq)
        lay = BlockRows(rows=rows, cols=cols, G=G)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((rows, cols))
        assert np.array_equal(lay.gather(lay.scatter(a)), a)

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 3).map(lambda k: 1 << k), st.integers(0, 4), st.integers(0, 4))
    def test_transposed_involution(self, G, rq, cq):
        lay = BlockRows(rows=G * (1 << rq), cols=G * (1 << cq), G=G)
        assert lay.transposed().transposed() == lay


class TestModelProperties:
    @settings(deadline=None, max_examples=50)
    @given(st.integers(0, 3).map(lambda k: 1 << k),
           st.integers(2, 8), st.integers(8, 14))
    def test_v_levels_identity(self, G, B, L):
        if B > L:
            return
        if L <= ilog2(G):
            return
        assert v_levels(L, B, G) == pytest.approx(v_levels_exact(L, B, G))


class TestFmmFftProperty:
    @settings(deadline=None, max_examples=8)
    @given(st.integers(0, 2**31 - 1))
    def test_matches_oracle_on_random_input(self, seed):
        from repro.core.plan import FmmFftPlan
        from repro.core.single import fmmfft_single

        rng = np.random.default_rng(seed)
        x = rng.uniform(-1, 1, 2048) + 1j * rng.uniform(-1, 1, 2048)
        plan = FmmFftPlan.create(N=2048, P=8, ML=16, B=3, Q=16)
        out = fmmfft_single(x, plan, backend="numpy")
        ref = np.fft.fft(x)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-13
