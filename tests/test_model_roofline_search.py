import pytest

from repro.fmm.plan import FmmGeometry
from repro.machine.spec import dual_p100_nvlink, dgx1_p100, dual_k40c_pcie, preset
from repro.model.roofline import (
    fft1d_model_time,
    fft2d_model_time,
    fmm_model_time,
    fmm_stage_times,
    fmmfft_model_time,
)
from repro.model.search import (
    SearchResult,
    find_fastest,
    search_grid,
    simulate_fft1d,
    simulate_fmmfft,
)


def geom(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2):
    return FmmGeometry.create(M=M, P=P, ML=ML, B=B, Q=Q, G=G)


SPEC = dual_p100_nvlink()


class TestRoofline:
    def test_stage_times_positive(self):
        times = fmm_stage_times(geom(), SPEC)
        assert all(t > 0 for t in times.values())

    def test_model_time_is_sum(self):
        g = geom()
        assert fmm_model_time(g, SPEC) == pytest.approx(
            sum(fmm_stage_times(g, SPEC).values())
        )

    def test_fig2_fmm_model_band(self):
        """The N=2^27 FMM model lands in the measured ~32 ms band."""
        t = fmm_model_time(geom(), SPEC, "complex128")
        assert 15e-3 < t < 45e-3

    def test_model_below_simulated(self):
        """Model = idealized: no latency, no derates — must lower-bound
        the simulated 'measured' time (Figure 5's efficiency < 1)."""
        from repro.fmm.distributed import DistributedFMM
        from repro.machine.cluster import VirtualCluster

        g = geom()
        cl = VirtualCluster(SPEC, execute=False)
        DistributedFMM(g, cl).run(staged=True)
        assert fmm_model_time(g, SPEC) < cl.wall_time()

    def test_fft1d_model_3x_fft2d_at_large_n(self):
        N = 1 << 27
        t1 = fft1d_model_time(N, SPEC)
        t2 = fft2d_model_time(1 << 19, 256, SPEC)
        assert 1.8 < t1 / t2 < 3.2

    def test_fmmfft_model_accepts_measured_2d(self):
        g = geom()
        t = fmmfft_model_time(g, SPEC, fft2d_time=0.02)
        assert t == pytest.approx(fmm_model_time(g, SPEC) + 0.02)

    def test_single_precision_faster(self):
        g = geom()
        assert fmm_model_time(g, SPEC, "complex64") < fmm_model_time(g, SPEC, "complex128")


class TestSearch:
    def test_grid_nonempty_and_admissible(self):
        grid = search_grid(1 << 20, 2)
        assert grid
        for c in grid:
            assert c["P"] >= 32
            assert (1 << 20) // c["P"] >= 32

    def test_grid_square_first(self):
        grid = search_grid(1 << 20, 2)
        first = grid[0]
        from repro.util.bitmath import ilog2

        assert abs(ilog2(first["P"]) - ilog2((1 << 20) // first["P"])) <= 2

    def test_single_precision_q8(self):
        assert all(c["Q"] == 8 for c in search_grid(1 << 16, 2, "complex64"))

    def test_simulate_times_positive(self):
        t = simulate_fmmfft(1 << 20, dict(P=1024, ML=64, B=3, Q=16), SPEC)
        assert t > 0
        assert simulate_fft1d(1 << 20, SPEC) > 0

    def test_find_fastest_result(self):
        r = find_fastest(1 << 18, SPEC)
        assert isinstance(r, SearchResult)
        assert r.speedup == pytest.approx(r.baseline_time / r.fmmfft_time)
        assert r.params in search_grid(1 << 18, 2)

    @pytest.mark.parametrize("sysname", ["2xK40c", "2xP100", "8xP100"])
    def test_large_n_speedup_bands(self, sysname):
        """The Figure 3 headline: FMM-FFT wins at N = 2^26, with the
        8xP100 system showing the largest gain."""
        r = find_fastest(1 << 26, preset(sysname))
        assert r.speedup > 1.02

    def test_8x_beats_2x_gain(self):
        r2 = find_fastest(1 << 26, dual_p100_nvlink())
        r8 = find_fastest(1 << 26, dgx1_p100())
        assert r8.speedup > r2.speedup

    def test_k40_modest_gain_at_large_n(self):
        """Fig 3 top: 2xK40c large-N speedups are ~1.0-1.1."""
        r = find_fastest(1 << 26, dual_k40c_pcie())
        assert 1.0 < r.speedup < 1.3
