import numpy as np
import pytest

from repro.util.validation import (
    ParameterError,
    c_factor,
    check_dtype,
    check_in,
    check_multiple,
    check_positive,
    check_pow2,
    check_range,
    complex_dtype_for,
    is_complex_dtype,
    real_dtype_for,
)


class TestChecks:
    def test_positive_passes(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("v", [0, -1, -0.5])
    def test_positive_rejects(self, v):
        with pytest.raises(ParameterError, match="x"):
            check_positive("x", v)

    def test_pow2(self):
        check_pow2("n", 64)
        with pytest.raises(ParameterError, match="n"):
            check_pow2("n", 12)

    def test_multiple(self):
        check_multiple("a", 12, 4)
        with pytest.raises(ParameterError, match="a"):
            check_multiple("a", 13, 4)

    def test_multiple_names_divisor(self):
        with pytest.raises(ParameterError, match="G"):
            check_multiple("a", 13, 4, "G")

    def test_range(self):
        check_range("b", 3, 2, 5)
        with pytest.raises(ParameterError):
            check_range("b", 1, 2, 5)
        with pytest.raises(ParameterError):
            check_range("b", 6, 2, 5)

    def test_range_open_ended(self):
        check_range("b", 100, 2, None)
        check_range("b", -100, None, 0)

    def test_in(self):
        check_in("mode", "a", ("a", "b"))
        with pytest.raises(ParameterError):
            check_in("mode", "c", ("a", "b"))


class TestDtypes:
    @pytest.mark.parametrize("dt", ["float32", "float64", "complex64", "complex128"])
    def test_supported(self, dt):
        assert check_dtype("d", dt) == np.dtype(dt)

    @pytest.mark.parametrize("dt", ["int32", "float16", "object"])
    def test_rejected(self, dt):
        with pytest.raises(ParameterError):
            check_dtype("d", dt)

    def test_complex_for(self):
        assert complex_dtype_for("float32") == np.complex64
        assert complex_dtype_for("float64") == np.complex128
        assert complex_dtype_for("complex64") == np.complex64

    def test_real_for(self):
        assert real_dtype_for("complex64") == np.float32
        assert real_dtype_for("complex128") == np.float64
        assert real_dtype_for("float64") == np.float64

    def test_is_complex(self):
        assert is_complex_dtype("complex64")
        assert not is_complex_dtype("float64")

    def test_c_factor(self):
        assert c_factor("float64") == 1
        assert c_factor("complex128") == 2
        assert c_factor("complex64") == 2
