"""The serving event loop: interleaving, determinism, and numerics.

The two load-bearing guarantees:

- the interleaved multi-batch schedule is hazard-free (namespaced
  buffers + release events make concurrent batches provably disjoint);
- serving is deterministic and batching-transparent — the same request
  set produces a bit-identical ledger on replay, and bit-identical
  *outputs* whether requests are served one-by-one or coalesced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    TransformRequest,
    synthetic_workload,
)
from repro.util.validation import ParameterError

N = 1 << 12
SPEC = p100_nvlink_node(2)


def make_scheduler(batching=True, max_inflight=2, capacity=64,
                   build_operators=False, compute_outputs=False, spec=SPEC):
    cache = PlanCache(spec, autotune=False, build_operators=build_operators)
    cl = VirtualCluster(spec, execute=False)
    sched = ServeScheduler(
        cl, Batcher(cache, max_batch=4, batching=batching),
        queue=AdmissionQueue(capacity=capacity),
        max_inflight=max_inflight, compute_outputs=compute_outputs,
    )
    return cl, sched


def burst(n, N=N, with_payloads=False, seed=2):
    return synthetic_workload(n, rate=1e5, sizes={N: 1.0}, seed=seed,
                              with_payloads=with_payloads)


class TestEventLoop:
    def test_serves_everything(self):
        cl, sched = make_scheduler()
        done = sched.run(burst(10))
        assert len(done) == 10
        assert sorted(c.request.rid for c in done) == list(range(10))
        assert sched.wall_time > 0 and cl.wall_time() > 0

    def test_batches_coalesce_under_burst(self):
        _, sched = make_scheduler()
        sched.run(burst(8))
        assert any(b["k"] > 1 for b in sched.batches)

    def test_shed_requests_never_complete(self):
        _, sched = make_scheduler(capacity=2)
        done = sched.run(burst(12))
        shed = sum(sched.queue.shed.values())
        assert shed > 0 and len(done) == 12 - shed

    def test_release_respects_setup_time(self):
        cl, sched = make_scheduler()
        sched.run(burst(2))
        b0 = sched.batches[0]
        assert b0["setup_time"] > 0.0
        assert b0["release"] >= b0["setup_time"]
        assert min(r.start for r in cl.ledger) >= b0["release"]

    def test_rejects_execute_cluster(self):
        cache = PlanCache(SPEC, autotune=False)
        cl = VirtualCluster(SPEC, execute=True)
        with pytest.raises(ParameterError):
            ServeScheduler(cl, Batcher(cache))

    def test_rejects_mismatched_g(self):
        cache = PlanCache(p100_nvlink_node(4), autotune=False)
        cl = VirtualCluster(SPEC, execute=False)
        with pytest.raises(ParameterError):
            ServeScheduler(cl, Batcher(cache))

    def test_compute_outputs_requires_operators_and_payloads(self):
        cache = PlanCache(SPEC, autotune=False)
        cl = VirtualCluster(SPEC, execute=False)
        with pytest.raises(ParameterError):
            ServeScheduler(cl, Batcher(cache), compute_outputs=True)
        _, sched = make_scheduler(build_operators=True, compute_outputs=True)
        with pytest.raises(ParameterError):
            sched.run(burst(2))  # no payloads attached


class TestInterleaving:
    def test_interleaved_schedule_sanitizes(self):
        cl, sched = make_scheduler(max_inflight=2)
        sched.run(burst(10))
        assert len(sched.batches) >= 2
        cl.sanitize()

    def test_batches_overlap_on_the_cluster(self):
        cl, sched = make_scheduler(batching=False, max_inflight=2)
        sched.run(burst(8))
        spans = sorted((b["release"], b["finish"]) for b in sched.batches)
        assert any(a_end > b_start for (_, a_end), (b_start, _)
                   in zip(spans, spans[1:]))

    def test_inflight_2_no_slower_than_1(self):
        _, s1 = make_scheduler(batching=False, max_inflight=1)
        s1.run(burst(8))
        _, s2 = make_scheduler(batching=False, max_inflight=2)
        s2.run(burst(8))
        assert s2.wall_time <= s1.wall_time


class TestDeterminism:
    def _ledger_signature(self, cl):
        return [(r.name, r.device, r.stream, r.kind, r.start, r.duration,
                 r.flops, r.comm_bytes) for r in cl.ledger]

    def test_replay_is_bit_identical(self):
        cl_a, sched_a = make_scheduler()
        sched_a.run(burst(9))
        cl_b, sched_b = make_scheduler()
        sched_b.run(burst(9))
        assert self._ledger_signature(cl_a) == self._ledger_signature(cl_b)
        assert sched_a.batches == sched_b.batches
        assert [(c.request.rid, c.finish) for c in sched_a.completed] == \
               [(c.request.rid, c.finish) for c in sched_b.completed]

    def test_outputs_identical_batched_vs_one_by_one(self):
        reqs = burst(6, with_payloads=True)
        _, coalesced = make_scheduler(batching=True, build_operators=True,
                                      compute_outputs=True)
        coalesced.run(reqs)
        _, oneby = make_scheduler(batching=False, build_operators=True,
                                  compute_outputs=True)
        oneby.run(reqs)
        assert any(b["k"] > 1 for b in coalesced.batches)
        assert all(b["k"] == 1 for b in oneby.batches)
        assert set(coalesced.outputs) == set(oneby.outputs) == {
            r.rid for r in reqs
        }
        for rid in coalesced.outputs:
            assert np.array_equal(coalesced.outputs[rid], oneby.outputs[rid])

    def test_outputs_match_single_transform(self):
        reqs = burst(3, with_payloads=True)
        _, sched = make_scheduler(batching=True, build_operators=True,
                                  compute_outputs=True)
        sched.run(reqs)
        plan = sched.batcher.cache.host_plan_for(N, "complex128")
        for r in reqs:
            assert np.array_equal(sched.outputs[r.rid],
                                  fmmfft_single(r.x, plan))
