import numpy as np
import pytest

from repro.fmm.plan import FmmGeometry
from repro.model.comm import (
    communication_savings,
    fft1d_comm_bytes,
    fft2d_comm_bytes,
    fmm_comm_bytes,
    fmm_comm_elements_paper,
)
from repro.model.mops import fmm_mops_collected, fmm_stage_mops, fmm_total_mops
from repro.model.roofline import fmm_intensity


def geom(M=1 << 14, P=256, ML=64, B=3, Q=16, G=2):
    return FmmGeometry.create(M=M, P=P, ML=ML, B=B, Q=Q, G=G)


class TestMops:
    def test_all_stages_present(self):
        m = fmm_stage_mops(geom())
        for stage in ("S2M", "L2T", "S2T", "M2L-B", "REDUCE"):
            assert stage in m and m[stage] > 0

    def test_total_positive_and_consistent(self):
        g = geom()
        assert fmm_total_mops(g) == pytest.approx(sum(fmm_stage_mops(g).values()))

    def test_complex_roughly_doubles_data_terms(self):
        g = geom()
        mc = fmm_total_mops(g, "complex128")
        mr = fmm_total_mops(g, "float64")
        assert 1.5 < mc / mr < 2.1

    def test_collected_same_order(self):
        """The paper's Section 5.3 form is a lower bound of the same
        magnitude as the exact accounting."""
        g = geom()
        exact = fmm_total_mops(g)
        collected = fmm_mops_collected(g.N, g.P, g.ML, g.Q, 2, g.B)
        assert 0.3 < collected / exact < 2.0

    def test_paper_intensity_regime(self):
        """Section 6: 'the model intensity for the FMM-FFT in this regime
        is only 7.8 flops/byte in double precision' (N=2^27 config)."""
        g = FmmGeometry.create(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2)
        intensity = fmm_intensity(g, "complex128")
        assert 5.0 < intensity < 12.0


class TestComm:
    def test_paper_element_counts(self):
        g = geom()
        e = fmm_comm_elements_paper(g, "complex128")
        C, P, Q, ML = 2, g.P, g.Q, g.ML
        L, B = g.tree.L, g.tree.B
        assert e["S"] == pytest.approx(2 * C * (P - 1) * ML)
        assert e["M-ell"] == pytest.approx(4 * C * (L - B) * (P - 1) * Q)
        assert e["M-B"] == pytest.approx((1 << B) * C * (P - 1) * Q)

    def test_g1_no_comm(self):
        g = geom(G=1)
        assert sum(fmm_comm_bytes(g).values()) == 0.0
        assert fft1d_comm_bytes(1 << 20, 1) == 0.0
        assert fft2d_comm_bytes(1 << 20, 1) == 0.0

    def test_fft1d_three_times_fft2d(self):
        N, G = 1 << 24, 4
        assert fft1d_comm_bytes(N, G) == pytest.approx(3 * fft2d_comm_bytes(N, G))

    def test_fmm_comm_tiny_vs_flops(self):
        """'This is extremely small compared to the number of flops
        performed' (Section 5.2)."""
        from repro.model.flops import fmm_total_flops

        g = FmmGeometry.create(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2)
        comm = sum(fmm_comm_bytes(g).values())
        flops = fmm_total_flops(g)
        assert flops / comm > 1e3

    def test_headline_communication_savings(self):
        """'reduce the communication required ... by up to 3x'."""
        N, G = 1 << 27, 2
        g = FmmGeometry.create(M=N // 256, P=256, ML=64, B=3, Q=16, G=G)
        savings = communication_savings(N, G, g)
        assert 2.5 < savings < 3.01
