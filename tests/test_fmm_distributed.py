import numpy as np
import pytest

from repro.fmm.batched import BatchedFMM
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry, FmmOperators
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.model.comm import fmm_comm_bytes
from repro.model.flops import fmm_stage_flops
from repro.util.validation import ParameterError


def _signal(P, M, rng):
    return rng.uniform(-1, 1, (P, M)) + 1j * rng.uniform(-1, 1, (P, M))


def _run(G, M=512, P=8, ML=16, B=3, Q=16, rng=None, execute=True):
    ops = FmmOperators.create(M=M, P=P, ML=ML, B=B, Q=Q, G=G)
    cl = VirtualCluster(p100_nvlink_node(G), execute=execute)
    dfmm = DistributedFMM(ops, cl)
    if execute:
        S = _signal(P, M, rng)
        evs, r = dfmm.run(S)
        return cl, dfmm, S, r
    dfmm.run(staged=True)
    return cl, dfmm, None, None


class TestMatchesBatched:
    @pytest.mark.parametrize("G", [1, 2, 4, 8])
    def test_all_device_counts(self, G, rng):
        cl, dfmm, S, r = _run(G, rng=rng)
        T = dfmm.gather()
        ref_ops = FmmOperators.create(M=512, P=8, ML=16, B=3, Q=16)
        Tref, rref = BatchedFMM(ref_ops).apply(S)
        assert np.linalg.norm(T - Tref) / np.linalg.norm(Tref) < 1e-13
        np.testing.assert_allclose(r, rref, atol=1e-11)

    @pytest.mark.parametrize("B", [2, 3, 4, 5])
    def test_base_levels(self, B, rng):
        cl, dfmm, S, _ = _run(2, M=512, ML=16, B=B, rng=rng)
        T = dfmm.gather()
        ref_ops = FmmOperators.create(M=512, P=8, ML=16, B=B, Q=16)
        Tref, _ = BatchedFMM(ref_ops).apply(S)
        assert np.linalg.norm(T - Tref) / np.linalg.norm(Tref) < 1e-13

    def test_l_equals_b(self, rng):
        """No hierarchical levels at all."""
        cl, dfmm, S, _ = _run(2, M=128, ML=16, B=3, rng=rng)
        T = dfmm.gather()
        ref_ops = FmmOperators.create(M=128, P=8, ML=16, B=3, Q=16)
        Tref, _ = BatchedFMM(ref_ops).apply(S)
        assert np.linalg.norm(T - Tref) / np.linalg.norm(Tref) < 1e-13


class TestLedgerAccounting:
    def test_flops_match_model(self, rng):
        """The engine's per-launch flops sum to the Section 5.1 counts."""
        G = 2
        cl, dfmm, _, _ = _run(G, rng=rng)
        model = fmm_stage_flops(dfmm.ops.geometry, "complex128")
        logged = cl.ledger.flops_by_name()
        for stage, f in model.items():
            assert logged[stage] == pytest.approx(f * G), stage

    def test_comm_bytes_match_model(self, rng):
        G = 4
        cl, dfmm, _, _ = _run(G, rng=rng)
        model = fmm_comm_bytes(dfmm.ops.geometry, "complex128")
        logged = cl.ledger.comm_bytes_by_name()
        assert logged["COMM-S"] == pytest.approx(model["COMM-S"] * G)
        m_levels = sum(v for k, v in logged.items() if k.startswith("COMM-M") and k != "COMM-MB")
        assert m_levels == pytest.approx(model["COMM-M"] * G)
        assert logged["COMM-MB"] == pytest.approx(model["COMM-MB"] * G)

    def test_launch_inventory(self, rng):
        """1 S2M + (L-B) M2M + 1 S2T + (L-B) M2L + 1 M2L-B + 1 REDUCE +
        (L-B) L2L + 1 L2T per device."""
        cl, dfmm, _, _ = _run(2, rng=rng)
        t = dfmm.ops.tree
        expected = 5 + 3 * (t.L - t.B)
        assert cl.ledger.launch_count(device=0) == expected

    def test_comm_hidden_behind_compute(self):
        """At large scale the FMM's communication is negligible and
        overlapped (Section 5.2)."""
        geom = FmmGeometry.create(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2)
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        DistributedFMM(geom, cl).run(staged=True)
        tr = cl.trace()
        assert tr.comm_time(0) < 0.2 * tr.compute_time(0)


class TestTimingOnly:
    def test_geometry_is_enough(self):
        geom = FmmGeometry.create(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2)
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        evs, r = DistributedFMM(geom, cl).run(staged=True)
        assert r is None
        assert cl.wall_time() > 0

    def test_fig2_fmm_time_band(self):
        """Figure 2: 255 FMMs of 524k in ~32 ms on (half of) 2xP100.

        Our simulated FMM stage should land in the same band (20-50ms).
        """
        geom = FmmGeometry.create(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2)
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        DistributedFMM(geom, cl).run(staged=True)
        assert 15e-3 < cl.wall_time() < 60e-3

    def test_execute_requires_operators(self):
        geom = FmmGeometry.create(M=256, P=4, ML=16, B=2, Q=8, G=2)
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            DistributedFMM(geom, cl)

    def test_g_mismatch_rejected(self):
        ops = FmmOperators.create(M=256, P=4, ML=16, B=2, Q=8, G=2)
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        with pytest.raises(ParameterError):
            DistributedFMM(ops, cl)
