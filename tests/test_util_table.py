import pytest

from repro.util.table import Table, format_bytes, format_count, format_time


class TestFormatTime:
    @pytest.mark.parametrize(
        "t,frag",
        [
            (0.0, "0 s"),
            (5e-9, "ns"),
            (5e-6, "us"),
            (5e-3, "ms"),
            (5.0, "s"),
        ],
    )
    def test_units(self, t, frag):
        assert frag in format_time(t)

    def test_nan(self):
        assert format_time(float("nan")) == "nan"

    def test_value(self):
        assert format_time(1.5e-3) == "1.50 ms"


class TestFormatBytes:
    def test_small(self):
        assert format_bytes(12) == "12 B"

    def test_kib(self):
        assert "KiB" in format_bytes(2048)

    def test_gib(self):
        assert "GiB" in format_bytes(3 * 2**30)


class TestFormatCount:
    def test_plain(self):
        assert format_count(999) == "999"

    @pytest.mark.parametrize("v,unit", [(2e3, "K"), (2e6, "M"), (2e9, "G"), (2e12, "T")])
    def test_units(self, v, unit):
        assert unit in format_count(v)


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "bbbb"], title="demo")
        t.add_row([1, 2])
        t.add_row(["long-cell", 3])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        # header, separator, and rows share the same width
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row([3.14159265])
        assert "3.142" in t.render()

    def test_row_length_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_no_title(self):
        t = Table(["a"])
        t.add_row([1])
        assert t.render().splitlines()[0].startswith("a")
