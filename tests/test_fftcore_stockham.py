import numpy as np
import pytest

from repro.fftcore.stockham import dft_direct, fft_pow2, num_passes
from repro.util.validation import ParameterError


def _rand(shape, rng, dtype=np.complex128):
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return x.astype(dtype)


class TestForward:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 1024, 4096])
    def test_matches_numpy(self, n, rng):
        x = _rand(n, rng)
        np.testing.assert_allclose(fft_pow2(x), np.fft.fft(x), rtol=0, atol=1e-9 * n)

    @pytest.mark.parametrize("n", [2, 8, 32, 512])
    def test_matches_direct_dft(self, n, rng):
        x = _rand(n, rng)
        np.testing.assert_allclose(fft_pow2(x), dft_direct(x), atol=1e-9 * n)

    @pytest.mark.parametrize("radix", [2, 4])
    def test_radices_agree(self, radix, rng):
        x = _rand(128, rng)
        np.testing.assert_allclose(fft_pow2(x, radix=radix), np.fft.fft(x), atol=1e-10)

    def test_batched(self, rng):
        x = _rand((5, 3, 64), rng)
        np.testing.assert_allclose(fft_pow2(x), np.fft.fft(x, axis=-1), atol=1e-10)

    def test_real_input_promoted(self, rng):
        x = rng.standard_normal(32)
        y = fft_pow2(x)
        assert y.dtype == np.complex128
        np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-12)

    def test_single_precision(self, rng):
        x = _rand(256, rng, np.complex64)
        y = fft_pow2(x)
        assert y.dtype == np.complex64
        rel = np.linalg.norm(y - np.fft.fft(x.astype(np.complex128))) / np.linalg.norm(y)
        assert rel < 1e-5


class TestInverse:
    @pytest.mark.parametrize("n", [4, 64, 1024])
    def test_roundtrip(self, n, rng):
        x = _rand(n, rng)
        y = fft_pow2(fft_pow2(x, sign=-1), sign=+1) / n
        np.testing.assert_allclose(y, x, atol=1e-10)

    def test_inverse_matches_numpy(self, rng):
        x = _rand(128, rng)
        np.testing.assert_allclose(fft_pow2(x, sign=+1) / 128, np.fft.ifft(x), atol=1e-10)


class TestValidation:
    def test_rejects_non_pow2(self, rng):
        with pytest.raises(ValueError):
            fft_pow2(_rand(12, rng))

    def test_rejects_bad_sign(self, rng):
        with pytest.raises(ValueError):
            fft_pow2(_rand(8, rng), sign=0)

    def test_rejects_bad_radix(self, rng):
        with pytest.raises(ValueError):
            fft_pow2(_rand(8, rng), radix=3)

    def test_dft_direct_refuses_large(self, rng):
        with pytest.raises(ParameterError):
            dft_direct(_rand(8192, rng))


class TestNumPasses:
    def test_radix2(self):
        assert num_passes(1024, radix=2) == 10

    def test_radix4(self):
        assert num_passes(1024, radix=4) == 5
        assert num_passes(2048, radix=4) == 6  # one radix-2 + five radix-4


class TestLinearity:
    def test_linear(self, rng):
        x, y = _rand(64, rng), _rand(64, rng)
        a, b = 2.5, -1.5 + 0.5j
        np.testing.assert_allclose(
            fft_pow2(a * x + b * y), a * fft_pow2(x) + b * fft_pow2(y), atol=1e-10
        )

    def test_parseval(self, rng):
        x = _rand(256, rng)
        X = fft_pow2(x)
        np.testing.assert_allclose(
            np.sum(np.abs(X) ** 2) / 256, np.sum(np.abs(x) ** 2), rtol=1e-12
        )

    def test_impulse(self):
        x = np.zeros(64, dtype=np.complex128)
        x[0] = 1.0
        np.testing.assert_allclose(fft_pow2(x), np.ones(64), atol=1e-12)

    def test_shift_theorem(self, rng):
        n = 128
        x = _rand(n, rng)
        k = np.arange(n)
        shifted = np.roll(x, 3)
        np.testing.assert_allclose(
            fft_pow2(shifted),
            fft_pow2(x) * np.exp(-2j * np.pi * 3 * k / n),
            atol=1e-9,
        )
