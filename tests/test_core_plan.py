import numpy as np
import pytest

from repro.core.plan import FmmFftPlan, admissible_params
from repro.util.validation import ParameterError


class TestCreate:
    def test_derived_fields(self):
        p = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16)
        assert p.M == 512
        assert p.L == 5
        assert p.dtype == np.complex128
        assert p.operators is not None

    def test_float_dtype_promoted_to_complex(self):
        p = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=8, dtype="float32")
        assert p.dtype == np.complex64

    def test_c_factor(self):
        p = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=8)
        assert p.C == 2

    def test_describe(self):
        p = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16)
        s = p.describe()
        assert "P=8" in s and "Q=16" in s

    def test_without_operators(self):
        p = FmmFftPlan.create(N=1 << 22, P=1 << 8, ML=64, B=3, Q=16,
                              build_operators=False)
        assert p.operators is None
        assert p.geometry.N == 1 << 22

    def test_with_devices(self):
        p = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16)
        p2 = p.with_devices(2)
        assert p2.G == 2
        assert p2.N == p.N


class TestValidation:
    def test_p_must_divide(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=1000, P=3, ML=16, B=2, Q=8)

    def test_p_at_least_2(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=1024, P=1, ML=16, B=2, Q=8)

    def test_m_power_of_two(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=96, P=2, ML=16, B=2, Q=8)

    def test_ml_divides_m(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=1024, P=4, ML=48, B=2, Q=8)

    def test_b_range(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=1024, P=4, ML=16, B=1, Q=8)
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=1024, P=4, ML=16, B=10, Q=8)

    def test_g_must_divide_base(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=4096, P=8, ML=16, B=2, Q=8, G=8)

    def test_g_must_divide_p(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=4096, P=2, ML=16, B=3, Q=8, G=4)

    def test_q_minimum(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=1)

    def test_ml_cannot_exceed_m(self):
        with pytest.raises(ParameterError):
            FmmFftPlan.create(N=256, P=16, ML=32, B=2, Q=8)


class TestAdmissibleParams:
    def test_nonempty_for_reasonable_n(self):
        grid = admissible_params(1 << 16)
        assert len(grid) > 10

    def test_all_create_valid_plans(self):
        for params in admissible_params(1 << 14, G=2)[:40]:
            plan = FmmFftPlan.create(N=1 << 14, G=2, build_operators=False, **params)
            assert plan.N == 1 << 14

    def test_respects_g(self):
        for params in admissible_params(1 << 14, G=4):
            assert (1 << params["B"]) % 4 == 0
            assert params["P"] % 4 == 0


class TestPlanKey:
    def test_key_fields(self):
        p = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16,
                              build_operators=False)
        assert p.plan_key() == ("fmmfft", 4096, 8, 16, 3, 16, 1, "complex128")

    def test_equal_configs_share_a_key(self):
        a = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16,
                              build_operators=False)
        b = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16)
        assert a.plan_key() == b.plan_key()  # operators don't matter

    def test_key_distinguishes_every_parameter(self):
        base = dict(N=4096, P=8, ML=16, B=3, Q=16)
        ref = FmmFftPlan.create(build_operators=False, **base).plan_key()
        variants = [
            dict(base, P=16), dict(base, ML=32), dict(base, B=2),
            dict(base, Q=8), dict(base, dtype="complex64"),
        ]
        keys = {FmmFftPlan.create(build_operators=False, **v).plan_key()
                for v in variants}
        keys.add(FmmFftPlan.create(N=8192, P=8, ML=16, B=3, Q=16,
                                   build_operators=False).plan_key())
        keys.add(FmmFftPlan.create(G=2, build_operators=False,
                                   **base).plan_key())
        assert ref not in keys and len(keys) == 7

    def test_key_is_hashable_dict_key(self):
        p = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=8,
                              build_operators=False)
        assert {p.plan_key(): "v"}[p.plan_key()] == "v"
