import dataclasses

import numpy as np
import pytest

from repro.machine.spec import (
    K40C,
    P100,
    ClusterSpec,
    DeviceSpec,
    LinkSpec,
    dgx1_p100,
    dual_k40c_pcie,
    dual_p100_nvlink,
    p100_nvlink_node,
    preset,
    scaled,
)
from repro.machine import topology as topo
from repro.util.validation import ParameterError


class TestDeviceSpec:
    def test_paper_parameters(self):
        # Section 5.4's practical architecture parameters
        assert K40C.gamma_f == pytest.approx(2.8e12)
        assert K40C.gamma_d == pytest.approx(1.2e12)
        assert K40C.beta == pytest.approx(100e9)
        assert P100.gamma_f == pytest.approx(10e12)
        assert P100.gamma_d == pytest.approx(5e12)
        assert P100.beta == pytest.approx(360e9)

    def test_gamma_by_dtype(self):
        assert P100.gamma(np.float32) == P100.gamma_f
        assert P100.gamma(np.complex64) == P100.gamma_f
        assert P100.gamma(np.float64) == P100.gamma_d
        assert P100.gamma(np.complex128) == P100.gamma_d

    def test_gamma_rejects_int(self):
        with pytest.raises(ParameterError):
            P100.gamma(np.int32)

    def test_rejects_bad_derate(self):
        with pytest.raises(ParameterError):
            DeviceSpec(name="x", gamma_f=1, gamma_d=1, beta=1, batched_gemm_derate=1.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            DeviceSpec(name="x", gamma_f=0, gamma_d=1, beta=1)


class TestLinkSpec:
    def test_paper_p2p(self):
        assert dual_k40c_pcie().pair_bandwidth(0, 1) == pytest.approx(13.2e9)
        assert dual_p100_nvlink().pair_bandwidth(0, 1) == pytest.approx(36e9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            LinkSpec(bandwidth=0)


class TestClusterSpec:
    def test_presets(self):
        assert preset("2xK40c").num_devices == 2
        assert preset("2xP100").num_devices == 2
        assert preset("8xP100").num_devices == 8

    def test_unknown_preset(self):
        with pytest.raises(ParameterError):
            preset("3xV100")

    def test_node_scaling(self):
        for G in (1, 2, 4, 8):
            assert p100_nvlink_node(G).num_devices == G

    def test_node_scaling_rejects(self):
        with pytest.raises(ParameterError):
            p100_nvlink_node(3)

    def test_dgx1_degree(self):
        spec = dgx1_p100()
        assert all(d == 4 for _, d in spec.graph.degree())

    def test_fallback_pair_bandwidth(self):
        spec = dgx1_p100()
        # 0 and 6 are not NVLink-adjacent -> PCIe fallback
        assert not spec.graph.has_edge(0, 6)
        assert spec.pair_bandwidth(0, 6) == pytest.approx(topo.DEFAULT_FALLBACK_BANDWIDTH)

    def test_alltoall_scaling_poorly_at_8(self):
        """Per-device injection bw at G=8 is below G=2's (Section 6.1)."""
        assert dgx1_p100().alltoall_bandwidth() < dual_p100_nvlink().alltoall_bandwidth()

    def test_nodes_must_be_contiguous(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from([0, 2])
        g.add_edge(0, 2, link=LinkSpec(1e9))
        with pytest.raises(ParameterError):
            ClusterSpec(device=P100, num_devices=2, graph=g, name="bad")

    def test_single_device_latency_zero(self):
        assert p100_nvlink_node(1).comm_latency() == 0.0

    def test_dgx1_latency_includes_fallback(self):
        assert dgx1_p100().comm_latency() >= topo.DEFAULT_FALLBACK_LATENCY

    def test_scaled_override(self):
        s = scaled(dual_p100_nvlink(), beta=720e9)
        assert s.device.beta == pytest.approx(720e9)
        assert s.num_devices == 2

    def test_link_accessor(self):
        spec = dual_p100_nvlink()
        assert spec.link(0, 1).bandwidth == pytest.approx(36e9)
        with pytest.raises(ParameterError):
            dgx1_p100().link(0, 6)
