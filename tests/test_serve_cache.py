"""Plan cache + wisdom: fingerprints, persistence, LRU, and counters."""

from __future__ import annotations

import pytest

from repro.machine.spec import p100_nvlink_node, preset
from repro.serve import PlanCache, Wisdom, spec_fingerprint
from repro.util.validation import ParameterError

N = 1 << 12


def cache(spec=None, **kw):
    """Fast cache for unit tests: no autotune search, default params."""
    kw.setdefault("autotune", False)
    return PlanCache(spec if spec is not None else p100_nvlink_node(2), **kw)


class TestFingerprint:
    def test_stable_and_machine_keyed(self):
        assert spec_fingerprint(preset("2xP100")) == spec_fingerprint(preset("2xP100"))
        assert spec_fingerprint(preset("2xP100")) != spec_fingerprint(preset("8xP100"))
        assert spec_fingerprint(preset("2xP100")) != spec_fingerprint(preset("2xK40c"))

    def test_name_does_not_matter(self):
        from dataclasses import replace

        spec = preset("2xP100")
        relabeled = replace(spec, name="renamed box")
        assert spec_fingerprint(spec) == spec_fingerprint(relabeled)


class TestWisdom:
    def test_roundtrip(self):
        spec = p100_nvlink_node(2)
        w = Wisdom()
        w.put(spec, N, "complex128", dict(P=16, ML=16, B=2, Q=16), "ring", 1e-3)
        w2 = Wisdom.loads(w.dumps())
        hit = w2.get(spec, N, "complex128")
        assert hit["params"] == dict(P=16, ML=16, B=2, Q=16)
        assert hit["comm_algorithm"] == "ring"
        assert len(w2) == 1

    def test_miss_on_other_machine_or_size(self):
        spec = p100_nvlink_node(2)
        w = Wisdom()
        w.put(spec, N, "complex128", dict(P=16, ML=16, B=2, Q=16), "ring")
        assert w.get(p100_nvlink_node(4), N, "complex128") is None
        assert w.get(spec, 2 * N, "complex128") is None
        assert w.get(spec, N, "complex64") is None

    def test_save_load(self, tmp_path):
        spec = p100_nvlink_node(2)
        w = Wisdom()
        w.put(spec, N, "complex128", dict(P=16, ML=16, B=2, Q=16), "direct")
        path = tmp_path / "wisdom.json"
        w.save(path)
        assert Wisdom.load(path).get(spec, N, "complex128") is not None

    @pytest.mark.parametrize("text", [
        "not json",
        '{"version": 2, "kind": "serve-wisdom", "entries": {}}',
        '{"version": 1, "kind": "other", "entries": {}}',
        '{"version": 1, "kind": "serve-wisdom", "entries": {"k": {}}}',
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(ParameterError):
            Wisdom.loads(text)


class TestPlanCache:
    def test_cold_then_warm(self):
        c = cache()
        plan, alg, setup = c.plan_for(N, "complex128")
        assert plan.N == N and setup > 0.0 and alg
        assert (c.plan_misses, c.wisdom_misses) == (1, 1)
        plan2, alg2, setup2 = c.plan_for(N, "complex128")
        assert plan2 is plan and alg2 == alg and setup2 == 0.0
        assert (c.plan_hits, c.wisdom_hits) == (1, 1)
        assert c.hit_rate == 0.5

    def test_no_search_without_autotune(self):
        c = cache()
        c.plan_for(N, "complex128")
        assert c.searches == 0

    def test_lru_eviction(self):
        c = cache(capacity=1)
        a, _, _ = c.plan_for(N, "complex128")
        c.plan_for(2 * N, "complex128")
        assert len(c) == 1
        b, _, _ = c.plan_for(N, "complex128")  # evicted -> rebuilt
        assert b is not a and c.plan_misses == 3

    def test_capacity_zero_never_caches(self):
        c = cache(capacity=0)
        c.plan_for(N, "complex128")
        c.plan_for(N, "complex128")
        assert len(c) == 0 and c.plan_hits == 0 and c.plan_misses == 2

    def test_remember_false_keeps_wisdom_cold(self):
        c = cache(remember=False)
        c.plan_for(N, "complex128")
        c.plan_for(N, "complex128")
        assert len(c.wisdom) == 0 and c.wisdom_misses == 2

    def test_warm_wisdom_crosses_instances(self):
        c1 = cache()
        c1.plan_for(N, "complex128")
        c2 = cache(wisdom=Wisdom.loads(c1.wisdom.dumps()))
        _, _, setup = c2.plan_for(N, "complex128")
        assert c2.wisdom_hits == 1 and c2.wisdom_misses == 0
        # wisdom hit still pays the (modeled) plan build, not the search
        from repro.serve.cache import PLAN_BUILD_TIME

        assert setup == pytest.approx(PLAN_BUILD_TIME)

    def test_plan_key_matches_cache_key(self):
        c = cache()
        plan, _, _ = c.plan_for(N, "complex128")
        assert plan.plan_key()[0] == "fmmfft"
        assert plan.plan_key() in c._plans

    def test_rejects_negative_capacity(self):
        with pytest.raises(ParameterError):
            cache(capacity=-1)

    def test_autotune_searches_once(self):
        c = PlanCache(p100_nvlink_node(2), autotune=True)
        c.plan_for(N, "complex128")
        c.plan_for(N, "complex128")
        assert c.searches == 1


class TestFingerprintTopologySensitivity:
    """The wisdom key must change when the machine's links change —
    otherwise a degraded topology poisons the healthy machine's wisdom."""

    def test_degraded_link_changes_fingerprint(self):
        from repro.faults import FaultInjector, LinkDegrade

        spec = preset("8xP100")
        inj = FaultInjector(spec, scheduled=(
            LinkDegrade(0, 1, 0.0, 1.0, bandwidth_scale=0.25),))
        assert (spec_fingerprint(inj.degraded_spec(0.5))
                != spec_fingerprint(spec))
        # outside the window the degraded spec is the healthy machine
        assert (spec_fingerprint(inj.degraded_spec(2.0))
                == spec_fingerprint(spec))

    def test_removed_link_changes_fingerprint(self):
        from repro.faults import FaultInjector, LinkFlap

        spec = preset("8xP100")
        inj = FaultInjector(spec, scheduled=(LinkFlap(2, 3, 0.0, 1.0),))
        assert (spec_fingerprint(inj.degraded_spec(0.5))
                != spec_fingerprint(spec))

    def test_isolated_device_changes_fingerprint(self):
        from repro.faults import DeviceLoss, FaultInjector

        spec = preset("8xP100")
        inj = FaultInjector(spec, scheduled=(DeviceLoss(5, 0.0),))
        assert (spec_fingerprint(inj.degraded_spec(1.0))
                != spec_fingerprint(spec))

    def test_distinct_degradations_distinct_fingerprints(self):
        from repro.faults import FaultInjector, LinkDegrade

        spec = preset("8xP100")
        a = FaultInjector(spec, scheduled=(
            LinkDegrade(0, 1, 0.0, 1.0, bandwidth_scale=0.25),))
        b = FaultInjector(spec, scheduled=(
            LinkDegrade(0, 1, 0.0, 1.0, bandwidth_scale=0.5),))
        assert (spec_fingerprint(a.degraded_spec(0.5))
                != spec_fingerprint(b.degraded_spec(0.5)))
