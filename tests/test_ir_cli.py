"""CLI surfaces of the IR subsystem: ``repro ir`` and ``repro verify --ir``."""

from __future__ import annotations

import json

from repro.cli import main


class TestIrCommand:
    def test_single_pipeline_table(self, capsys):
        rc = main(["ir", "--pipeline", "fft1d", "--n", "2^10",
                   "--system", "2xP100", "--repeats", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "IR capture/replay" in out
        assert "fft1d" in out
        for col in ("nodes", "records", "fused", "peak live/dev",
                    "capture [ms]", "replay [ms]", "host speedup"):
            assert col in out

    def test_nufft_falls_back_to_single_device(self, capsys):
        rc = main(["ir", "--pipeline", "nufft", "--n", "2^8",
                   "--system", "2xP100", "--repeats", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nufft" in out

    def test_json_payload(self, capsys, tmp_path):
        path = tmp_path / "ir.json"
        rc = main(["ir", "--pipeline", "fft1d", "--n", "2^10",
                   "--system", "2xP100", "--repeats", "1",
                   "--json", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["system"] == "2xP100"
        assert payload["n"] == 1024
        (row,) = payload["pipelines"]
        assert row["pipeline"] == "fft1d"
        assert row["nodes"] > 0
        assert row["records_per_replay"] > 0
        assert row["peak_live_bytes"] > 0
        assert row["capture_s"] > 0 and row["replay_s"] > 0

    def test_comm_algorithm_knob(self, capsys):
        rc = main(["ir", "--pipeline", "fft1d", "--n", "2^10",
                   "--system", "2xP100", "--comm", "ring", "--repeats", "1"])
        assert rc == 0
        assert "ring" in capsys.readouterr().out


class TestVerifyIr:
    def test_verify_ir_table_and_exit_code(self, capsys, tmp_path):
        path = tmp_path / "findings.json"
        rc = main(["verify", "--ir", "--ir-n", "2^12", "--g-list", "2",
                   "--json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "IR graph preallocation" in out
        for name in ("fft1d", "fft2d", "rfft", "fmm", "fmmfft", "nufft"):
            assert name in out
        assert "certified" in out
        doc = json.loads(path.read_text())
        assert doc["findings"] == []

    def test_verify_without_ir_unchanged(self, capsys):
        rc = main(["verify", "--g-list", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "IR graph preallocation" not in out
