import math

import pytest

from repro.fftcore.flops import (
    MODEL_RADIX_BITS,
    fft_flops,
    fft_mops,
    fft_passes,
    fft_small_n_efficiency,
)
from repro.fftcore.twiddle import cache_size, clear_cache, twiddles

import numpy as np


class TestFftFlops:
    def test_standard_count(self):
        assert fft_flops(1024) == pytest.approx(5 * 1024 * 10)

    def test_batch_scales(self):
        assert fft_flops(64, batch=7) == pytest.approx(7 * fft_flops(64))

    def test_real_is_half(self):
        assert fft_flops(256, complex_input=False) == pytest.approx(fft_flops(256) / 2)

    def test_n1_is_free(self):
        assert fft_flops(1) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(Exception):
            fft_flops(0)


class TestFftPasses:
    def test_min_one(self):
        assert fft_passes(2) == 1.0
        assert fft_passes(1) == 1.0

    def test_smooth_growth(self):
        assert fft_passes(1 << 27) == pytest.approx(27 / MODEL_RADIX_BITS)

    def test_monotone(self):
        vals = [fft_passes(1 << q) for q in range(1, 28)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


class TestFftMops:
    def test_one_pass_reads_and_writes(self):
        n = 1 << MODEL_RADIX_BITS
        assert fft_mops(n, batch=1, itemsize=16) == pytest.approx(2 * n * 16)

    def test_scales_with_itemsize(self):
        assert fft_mops(4096, 1, 16) == pytest.approx(2 * fft_mops(4096, 1, 8))


class TestSmallNEfficiency:
    def test_small_is_inefficient(self):
        assert fft_small_n_efficiency(4) < 0.2

    def test_large_is_efficient(self):
        assert fft_small_n_efficiency(1 << 16) > 0.99

    def test_monotone(self):
        vals = [fft_small_n_efficiency(1 << q) for q in range(1, 20)]
        assert all(b > a for a, b in zip(vals, vals[1:]))


class TestTwiddleCache:
    def test_values(self):
        t = twiddles(8, -1)
        k = np.arange(8)
        np.testing.assert_allclose(t, np.exp(-2j * np.pi * k / 8), atol=1e-15)

    def test_cache_hit_is_same_object(self):
        clear_cache()
        a = twiddles(16, -1)
        b = twiddles(16, -1)
        assert a is b
        assert cache_size() == 1

    def test_sign_keys_distinct(self):
        clear_cache()
        twiddles(16, -1)
        twiddles(16, 1)
        assert cache_size() == 2

    def test_rejects_bad_sign(self):
        with pytest.raises(ValueError):
            twiddles(8, 0)

    def test_single_precision_narrowing(self):
        t = twiddles(1 << 20, -1, dtype="complex64")
        assert t.dtype == np.complex64
        # computed in double then narrowed: error stays at float32 eps
        ref = np.exp(-2j * np.pi * np.arange(1 << 20) / (1 << 20))
        assert np.abs(t - ref).max() < 1e-6

    def test_cache_bounded(self):
        clear_cache()
        for n in range(1, 300):
            twiddles(n, -1)
        assert cache_size() <= 256
