import networkx as nx
import pytest

from repro.machine.spec import LinkSpec
from repro.machine import topology as topo
from repro.util.validation import ParameterError

LINK = LinkSpec(bandwidth=36e9, latency=8e-6)


class TestGraphBuilders:
    def test_fully_connected(self):
        g = topo.fully_connected(4, LINK)
        assert g.number_of_edges() == 6
        assert "fallback_link" in g.graph

    def test_ring(self):
        g = topo.ring(5, LINK)
        assert g.number_of_edges() == 5
        assert all(d == 2 for _, d in g.degree())

    def test_quad_is_fully_connected(self):
        g = topo.nvlink_quad(LINK)
        assert g.number_of_edges() == 6

    def test_hcm_structure(self):
        g = topo.dgx1_hybrid_cube_mesh(LINK)
        assert g.number_of_nodes() == 8
        assert all(d == 4 for _, d in g.degree())
        # cube edges pair the quads
        for a in range(4):
            assert g.has_edge(a, a + 4)
        # exactly 3 non-adjacent peers per GPU
        for a in range(8):
            assert sum(1 for b in range(8) if b != a and not g.has_edge(a, b)) == 3


class TestPairBandwidth:
    def test_direct(self):
        g = topo.fully_connected(2, LINK)
        assert topo.pair_bandwidth(g, 0, 1) == pytest.approx(36e9)

    def test_fallback(self):
        g = topo.dgx1_hybrid_cube_mesh(LINK)
        assert topo.pair_bandwidth(g, 0, 6) == pytest.approx(
            topo.DEFAULT_FALLBACK_BANDWIDTH
        )

    def test_same_device_rejected(self):
        g = topo.fully_connected(2, LINK)
        with pytest.raises(ParameterError):
            topo.pair_bandwidth(g, 1, 1)

    def test_pair_latency(self):
        g = topo.dgx1_hybrid_cube_mesh(LINK)
        assert topo.pair_latency(g, 0, 1) == pytest.approx(8e-6)
        assert topo.pair_latency(g, 0, 6) == pytest.approx(topo.DEFAULT_FALLBACK_LATENCY)


class TestAllToAll:
    def test_pair_at_full_efficiency(self):
        g = topo.fully_connected(2, LINK)
        bw = topo.alltoall_effective_bandwidth(g, efficiency=1.0)
        assert bw == pytest.approx(36e9)

    def test_default_efficiency_applied(self):
        g = topo.fully_connected(2, LINK)
        assert topo.alltoall_effective_bandwidth(g) == pytest.approx(
            36e9 * topo.ALLTOALL_EFFICIENCY
        )

    def test_hcm_limited_by_fallback(self):
        g = topo.dgx1_hybrid_cube_mesh(LINK)
        bw = topo.alltoall_effective_bandwidth(g, efficiency=1.0)
        # 3 fallback peers serialize through 10 GB/s: 7 / (3/10e9)
        assert bw == pytest.approx(7 / (3 / topo.DEFAULT_FALLBACK_BANDWIDTH))

    def test_quad_aggregates_links(self):
        g = topo.nvlink_quad(LINK)
        bw = topo.alltoall_effective_bandwidth(g, efficiency=1.0)
        assert bw == pytest.approx(3 * 36e9)

    def test_needs_two_devices(self):
        g = topo.fully_connected(1, LINK)
        with pytest.raises(ParameterError):
            topo.alltoall_effective_bandwidth(g)

    def test_bad_efficiency(self):
        g = topo.fully_connected(2, LINK)
        with pytest.raises(ParameterError):
            topo.alltoall_effective_bandwidth(g, efficiency=0.0)

    def test_missing_fallback_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1, link=LINK)
        with pytest.raises(ParameterError):
            topo.fallback_link(g)


class TestDiameterLatency:
    def test_single(self):
        assert topo.diameter_latency(topo.fully_connected(1, LINK)) == 0.0

    def test_pair(self):
        assert topo.diameter_latency(topo.fully_connected(2, LINK)) == pytest.approx(8e-6)

    def test_hcm_worst_is_fallback(self):
        g = topo.dgx1_hybrid_cube_mesh(LINK)
        assert topo.diameter_latency(g) == pytest.approx(topo.DEFAULT_FALLBACK_LATENCY)
