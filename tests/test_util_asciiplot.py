import pytest

from repro.util.asciiplot import ascii_bar_chart, ascii_series


class TestBarChart:
    def test_basic(self):
        out = ascii_bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value gets full width
        assert lines[0].count("#") == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "empty" in ascii_bar_chart([], [])

    def test_all_zero(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "#" not in out


class TestSeries:
    def test_renders_markers(self):
        out = ascii_series([1, 2, 3], {"s1": [1.0, 2.0, 3.0]}, height=5)
        assert "o" in out
        assert "s1" in out

    def test_two_series_legend(self):
        out = ascii_series([1, 2], {"a": [1, 2], "b": [2, 1]}, height=4)
        assert "o=a" in out and "x=b" in out

    def test_log_scale(self):
        out = ascii_series([1, 2, 3], {"s": [1.0, 10.0, 100.0]}, height=5, logy=True)
        assert "s" in out

    def test_log_scale_nonpositive(self):
        out = ascii_series([1], {"s": [-1.0]}, height=3, logy=True)
        assert "no positive data" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_series([1, 2], {"s": [1.0]})

    def test_no_series(self):
        assert "no series" in ascii_series([1], {})

    def test_nan_skipped(self):
        out = ascii_series([1, 2], {"s": [float("nan"), 1.0]}, height=3)
        assert "s" in out
