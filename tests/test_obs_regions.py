"""Tests for the hierarchical region API and its pipeline threading."""

import pytest

from repro.machine.cluster import VirtualCluster
from repro.machine.spec import preset
from repro.obs import region as obs_region
from repro.util.validation import ParameterError


def _cluster():
    return VirtualCluster(preset("2xP100"), execute=False)


class TestRegionScopes:
    def test_nested_scopes_build_path(self):
        cl = _cluster()
        assert cl.region_path == ""
        with cl.region("a"):
            assert cl.region_path == "a"
            with cl.region("b"):
                assert cl.region_path == "a/b"
            assert cl.region_path == "a"
        assert cl.region_path == ""

    def test_scope_restored_on_exception(self):
        cl = _cluster()
        with pytest.raises(RuntimeError):
            with cl.region("a"):
                raise RuntimeError("boom")
        assert cl.region_path == ""

    def test_rejects_bad_names(self):
        cl = _cluster()
        with pytest.raises(ParameterError):
            with cl.region(""):
                pass
        with pytest.raises(ParameterError):
            with cl.region("a/b"):
                pass

    def test_obs_region_helper_expands_paths(self):
        cl = _cluster()
        with obs_region(cl, "a/b/c"):
            assert cl.region_path == "a/b/c"
        assert cl.region_path == ""

    def test_launch_stamps_current_path(self):
        cl = _cluster()
        with cl.region("stage"):
            cl.launch(0, "k", "custom", 1.0, 1.0, "complex128",
                      reads=["x"], writes=["x"])
        cl.launch(0, "k2", "custom", 1.0, 1.0, "complex128",
                  reads=["x"], writes=["x"])
        recs = list(cl.ledger)
        assert recs[0].region == "stage"
        assert recs[1].region == ""

    def test_comm_and_host_ops_stamped(self):
        cl = _cluster()
        with cl.region("halo"):
            cl.sendrecv(0, 1, 64.0, "c", reads=["a"], writes=["b"])
            cl.host_op(0, "h", lambda c: None, reads=["b"], writes=["b"])
        assert all(r.region == "halo" for r in cl.ledger)


class TestPipelineThreading:
    def test_fft1d_fully_regioned(self):
        from repro.dfft.fft1d import Distributed1DFFT

        cl = _cluster()
        Distributed1DFFT(1 << 16, cl).run()
        regions = {r.region for r in cl.ledger}
        assert all(p.startswith("fft1d/") for p in regions), regions
        assert {"fft1d/transpose1", "fft1d/fftM", "fft1d/transpose2",
                "fft1d/fftP", "fft1d/transpose3"} <= regions

    def test_rfft_nests_inner_fft(self):
        from repro.dfft.realfft import DistributedRealFFT

        cl = _cluster()
        DistributedRealFFT(1 << 16, cl).run()
        regions = {r.region for r in cl.ledger}
        assert "rfft/pack" in regions
        assert any(p.startswith("rfft/fft1d/") for p in regions)
        assert "rfft/mirror" in regions and "rfft/untangle" in regions

    def test_fmmfft_fully_regioned(self):
        from repro.core.distributed import FmmFftDistributed
        from repro.core.plan import FmmFftPlan
        from repro.model.search import find_fastest

        spec = preset("2xP100")
        r = find_fastest(1 << 18, spec)
        plan = FmmFftPlan.create(N=1 << 18, G=2, build_operators=False,
                                 **r.params)
        cl = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl).run()
        regions = {r.region for r in cl.ledger}
        assert all(p.startswith("fmmfft/") for p in regions), regions
        assert any(p.startswith("fmmfft/fmm/") for p in regions)
        assert any(p.startswith("fmmfft/fft2d/") for p in regions)

    def test_time_by_region_sums_to_total(self):
        from repro.dfft.fft1d import Distributed1DFFT

        cl = _cluster()
        Distributed1DFFT(1 << 16, cl).run()
        per_region = cl.ledger.time_by_region()
        total = sum(r.duration for r in cl.ledger)
        assert sum(per_region.values()) == pytest.approx(total)
        per_dev = cl.ledger.time_by_region(device=0)
        assert sum(per_dev.values()) == pytest.approx(
            sum(r.duration for r in cl.ledger.records(device=0))
        )

    def test_regions_do_not_change_timing(self):
        """The region stack is pure annotation: identical schedules."""
        from repro.dfft.fft1d import Distributed1DFFT

        cl1 = _cluster()
        Distributed1DFFT(1 << 16, cl1).run()
        cl2 = _cluster()
        with cl2.region("outer"):
            Distributed1DFFT(1 << 16, cl2).run()
        assert cl1.wall_time() == cl2.wall_time()
        assert [r.region for r in cl2.ledger] == [
            f"outer/{r.region}" for r in cl1.ledger
        ]
