import pytest

from repro.machine.ledger import Ledger, OpRecord


def rec(**kw):
    base = dict(
        device=0, stream="compute", kind="gemm", name="S2M",
        start=0.0, duration=1.0, flops=10.0, mops=5.0,
    )
    base.update(kw)
    return OpRecord(**base)


class TestOpRecord:
    def test_end(self):
        assert rec(start=1.0, duration=2.0).end == pytest.approx(3.0)

    def test_frozen(self):
        r = rec()
        with pytest.raises(Exception):
            r.start = 5.0


class TestLedger:
    def test_append_and_len(self):
        l = Ledger()
        l.append(rec())
        l.append(rec(name="S2T"))
        assert len(l) == 2

    def test_rejects_unknown_kind(self):
        l = Ledger()
        with pytest.raises(ValueError):
            l.append(rec(kind="teleport"))

    def test_filters(self):
        l = Ledger()
        l.append(rec(device=0, name="a"))
        l.append(rec(device=1, name="a", kind="comm"))
        l.append(rec(device=1, name="b", stream="comm"))
        assert len(l.records(device=1)) == 2
        assert len(l.records(kind="comm")) == 1
        assert len(l.records(name="a")) == 2
        assert len(l.records(stream="comm")) == 1
        assert len(l.records(device=1, name="a")) == 1

    def test_total(self):
        l = Ledger()
        l.append(rec(flops=3.0))
        l.append(rec(flops=4.0))
        assert l.total("flops") == pytest.approx(7.0)

    def test_time_by_name(self):
        l = Ledger()
        l.append(rec(name="a", duration=1.0))
        l.append(rec(name="a", duration=2.0))
        l.append(rec(name="b", duration=5.0))
        t = l.time_by_name()
        assert t["a"] == pytest.approx(3.0)
        assert t["b"] == pytest.approx(5.0)

    def test_flops_and_mops_by_name(self):
        l = Ledger()
        l.append(rec(name="a", flops=1.0, mops=2.0))
        l.append(rec(name="a", flops=1.0, mops=2.0))
        assert l.flops_by_name()["a"] == pytest.approx(2.0)
        assert l.mops_by_name()["a"] == pytest.approx(4.0)

    def test_comm_bytes_by_name_skips_zero(self):
        l = Ledger()
        l.append(rec(name="x"))
        l.append(rec(name="halo", kind="comm", comm_bytes=100.0))
        assert "x" not in l.comm_bytes_by_name()
        assert l.comm_bytes_by_name()["halo"] == pytest.approx(100.0)

    def test_launch_count_excludes_comm(self):
        l = Ledger()
        l.append(rec())
        l.append(rec(kind="comm"))
        l.append(rec(kind="host"))
        assert l.launch_count() == 1
        assert l.launch_count(compute_only=False) == 3

    def test_span(self):
        l = Ledger()
        assert l.span() == (0.0, 0.0)
        l.append(rec(start=1.0, duration=1.0))
        l.append(rec(start=0.5, duration=0.2))
        assert l.span() == (0.5, 2.0)

    def test_merge(self):
        a, b = Ledger(), Ledger()
        a.append(rec())
        b.append(rec())
        a.merge(b)
        assert len(a) == 2


class TestLedgerHardening:
    def test_append_returns_monotone_uids(self):
        l = Ledger()
        assert l.append(rec()) == 0
        assert l.append(rec()) == 1
        assert [r.uid for r in l] == [0, 1]

    def test_by_uid(self):
        l = Ledger()
        u = l.append(rec(name="S2T"))
        assert l.by_uid(u).name == "S2T"
        with pytest.raises(KeyError):
            l.by_uid(99)

    def test_rejects_empty_name(self):
        l = Ledger()
        with pytest.raises(ValueError, match="name"):
            l.append(rec(name=""))

    def test_rejects_non_finite_timing(self):
        l = Ledger()
        with pytest.raises(ValueError, match="finite"):
            l.append(rec(start=float("nan")))
        with pytest.raises(ValueError, match="finite"):
            l.append(rec(duration=float("inf")))

    def test_merge_shifts_uids_and_waits(self):
        a, b = Ledger(), Ledger()
        a.append(rec())
        a.append(rec())
        u = b.append(rec(name="x"))
        b.append(rec(name="y", waits=(u,)))
        a.merge(b)
        recs = list(a)
        assert [r.uid for r in recs] == [0, 1, 2, 3]
        assert recs[3].waits == (2,)  # still points at "x" after the shift

    def test_merged_uids_resolve(self):
        a, b = Ledger(), Ledger()
        a.append(rec())
        b.append(rec(name="x"))
        a.merge(b)
        assert a.by_uid(1).name == "x"

    def test_merge_preserves_wait_event_references(self):
        """After the uid shift, every wait still names its original producer."""
        a, b = Ledger(), Ledger()
        a.append(rec(name="a0"))
        a.append(rec(name="a1", start=1.0, waits=(0,)))
        up = b.append(rec(name="producer", device=1, writes=((1, "buf"),)))
        b.append(rec(name="consumer", device=1, start=1.0,
                     waits=(up,), reads=((1, "buf"),)))
        a.merge(b)
        consumer = next(r for r in a if r.name == "consumer")
        assert [a.by_uid(w).name for w in consumer.waits] == ["producer"]

    def test_merge_keeps_hazard_analysis_identical(self):
        """Merging disjoint-device runs is invisible to the sanitizer.

        Regression for the uid shift: a stale (unshifted) wait would
        either dangle (a defect) or drop the ordering edge and turn the
        overlapped buffer reuse below into a reported RAW hazard.
        """
        from repro.analysis.hazards import find_hazards, happens_before

        def run_on(device):
            l = Ledger()
            u = l.append(rec(name="w", device=device, start=0.0,
                             duration=1.0, writes=((device, "buf"),)))
            l.append(rec(name="r", device=device, stream="comm", kind="comm",
                         start=1.0, duration=1.0, waits=(u,),
                         comm_bytes=8.0, reads=((device, "buf"),)))
            return l

        a, b = run_on(0), run_on(1)
        pre_a, pre_b = find_hazards(a), find_hazards(b)
        assert pre_a.ok and pre_b.ok
        n_edges = len(happens_before(a)) + len(happens_before(b))

        a.merge(b)
        post = find_hazards(a)
        assert post.ok, post.render()
        assert post.num_ops == pre_a.num_ops + pre_b.num_ops
        # devices are disjoint, so the merged graph is exactly the union
        assert len(happens_before(a)) == n_edges

    def test_merge_without_shift_would_be_caught(self):
        """The same schedule with a forged stale wait is NOT race-free —
        i.e. the previous test's pass depends on the shift being right."""
        from repro.analysis.hazards import find_hazards

        l = Ledger()
        l.append(rec(name="w", device=1, start=0.0, duration=1.0,
                     writes=((1, "buf"),)))
        # overlapped read with a wait pointing at a nonexistent uid —
        # what a broken merge would produce
        l.append(rec(name="r", device=1, stream="comm", kind="comm",
                     start=0.5, duration=1.0, waits=(99,),
                     comm_bytes=8.0, reads=((1, "buf"),)))
        rep = find_hazards(l)
        assert not rep.ok

    def test_merge_carries_region(self):
        a, b = Ledger(), Ledger()
        b.append(rec(region="fmm/S2M"))
        a.merge(b)
        assert list(a)[0].region == "fmm/S2M"
