"""The hazard sanitizer: unit semantics + certification of every
shipped pipeline + detection of a seeded missing-dependency race."""

import numpy as np
import pytest

from repro.analysis.hazards import (
    HazardError,
    buffers_conflict,
    find_hazards,
    happens_before,
)
from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.dfft.fft2d import Distributed2DFFT
from repro.dfft.realfft import DistributedRealFFT
from repro.fmm.distributed import DistributedFMM
from repro.machine import topology as topo
from repro.machine.cluster import VirtualCluster
from repro.machine.ledger import Ledger, OpRecord
from repro.machine.multinode import multinode_p100
from repro.machine.spec import P100, ClusterSpec, LinkSpec, p100_nvlink_node
from repro.machine.stream import Event


def op(uid, *, device=0, stream="s0", start=0.0, dur=1.0,
       reads=(), writes=(), waits=(), name=None, kind="gemm"):
    """Hand-built record: reads/writes are buffer names on ``device``."""
    return OpRecord(
        device=device, stream=stream, kind=kind, name=name or f"op{uid}",
        start=start, duration=dur, uid=uid,
        reads=tuple((device, b) for b in reads),
        writes=tuple((device, b) for b in writes),
        waits=tuple(waits),
    )


def ledger_of(*recs):
    led = Ledger()
    for r in recs:
        led.append(r)
    return led


class TestBufferConflicts:
    def test_identical(self):
        assert buffers_conflict("x", "x")

    def test_whole_vs_part(self):
        assert buffers_conflict("x", "x#r0")
        assert buffers_conflict("x#r0", "x")

    def test_distinct_parts_disjoint(self):
        assert not buffers_conflict("x#r0", "x#r1")

    def test_distinct_buffers(self):
        assert not buffers_conflict("x", "y")
        # 'x2' is a different buffer, not a part of 'x'
        assert not buffers_conflict("x", "x2")


class TestDataHazards:
    def test_raw_detected(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x"]),
            op(1, stream="s1", start=1.0, dur=2.0, reads=["x"]),
        )
        rep = find_hazards(led, include_audit=False)
        assert len(rep.hazards) == 1
        h = rep.hazards[0]
        assert h.kind == "RAW"
        assert h.first.uid == 0 and h.second.uid == 1
        assert "no ordering edge" in h.describe()

    def test_war_and_waw(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, reads=["x"]),
            op(1, stream="s1", start=1.0, dur=2.0, writes=["x"]),
        )
        assert find_hazards(led, include_audit=False).hazards[0].kind == "WAR"
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x"]),
            op(1, stream="s1", start=1.0, dur=2.0, writes=["x"]),
        )
        assert find_hazards(led, include_audit=False).hazards[0].kind == "WAW"

    def test_read_read_never_hazards(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, reads=["x"]),
            op(1, stream="s1", start=1.0, dur=2.0, reads=["x"]),
        )
        assert not find_hazards(led, include_audit=False).hazards

    def test_different_devices_never_conflict(self):
        led = ledger_of(
            op(0, device=0, stream="s0", start=0.0, dur=2.0, writes=["x"]),
            op(1, device=1, stream="s0", start=1.0, dur=2.0, reads=["x"]),
        )
        assert not find_hazards(led, include_audit=False).hazards

    def test_disjoint_intervals_no_hazard(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=1.0, writes=["x"]),
            op(1, stream="s1", start=1.0, dur=1.0, reads=["x"]),
        )
        assert not find_hazards(led, include_audit=False).hazards

    def test_zero_duration_never_hazards(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x"]),
            op(1, stream="s1", start=1.0, dur=0.0, reads=["x"], kind="host"),
        )
        assert not find_hazards(led, include_audit=False).hazards

    def test_program_order_suppresses(self):
        # same (device, stream) queue: ordered even with no wait edge
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x"]),
            op(1, stream="s0", start=1.0, dur=2.0, reads=["x"]),
        )
        assert not find_hazards(led, include_audit=False).hazards

    def test_wait_edge_suppresses(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x"]),
            op(1, stream="s1", start=1.0, dur=2.0, reads=["x"], waits=(0,)),
        )
        rep = find_hazards(led, include_audit=False)
        assert not rep.hazards
        # ... though waiting on an event that completes later is a defect
        assert any("future" in d for d in rep.defects)

    def test_transitive_ordering_suppresses(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=1.0, writes=["x"]),
            op(1, stream="s1", start=1.0, dur=1.0, waits=(0,)),
            op(2, stream="s2", start=2.0, dur=1.0, reads=["x"], waits=(1,)),
        )
        assert not find_hazards(led, include_audit=False).hazards

    def test_part_vs_whole_hazard(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x#r0"]),
            op(1, stream="s1", start=1.0, dur=2.0, reads=["x"]),
        )
        assert len(find_hazards(led, include_audit=False).hazards) == 1

    def test_disjoint_parts_overlap_freely(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x#r0"]),
            op(1, stream="s1", start=1.0, dur=2.0, writes=["x#r1"]),
        )
        assert not find_hazards(led, include_audit=False).hazards


class TestStructuralDefects:
    def test_dangling_wait(self):
        led = ledger_of(op(0, waits=(99,)))
        rep = find_hazards(led, include_audit=False)
        assert any("unknown op" in d for d in rep.defects)
        assert not rep.ok

    def test_audit_folded_in(self):
        # two ops double-booking one stream: a physical impossibility the
        # schedule auditor catches, surfaced as a sanitizer defect
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0),
            op(1, stream="s0", start=1.0, dur=2.0),
        )
        assert not find_hazards(led).ok
        assert find_hazards(led, include_audit=False).ok

    def test_empty_ledger_certifies(self):
        rep = find_hazards(Ledger())
        assert rep.ok
        assert "race-free" in rep.render()


class TestReport:
    def test_render_and_raise(self):
        led = ledger_of(
            op(0, stream="s0", start=0.0, dur=2.0, writes=["x"]),
            op(1, stream="s1", start=1.0, dur=2.0, reads=["x"]),
        )
        rep = find_hazards(led, include_audit=False)
        assert "RAW" in rep.render()
        with pytest.raises(HazardError, match="RAW"):
            rep.raise_if_any()

    def test_happens_before_edge_count(self):
        led = ledger_of(
            op(0, stream="s0"),
            op(1, stream="s0", start=1.0, waits=(0,)),
        )
        edges = happens_before(led)
        # one program-order edge + one (redundant) wait edge
        assert (0, 1) in edges and len(edges) == 2


def _run_fmmfft(G, N, P, ML, B, Q, execute, **kw):
    cl = VirtualCluster(p100_nvlink_node(G), execute=execute)
    plan = FmmFftPlan.create(N=N, P=P, ML=ML, B=B, Q=Q, G=G,
                             build_operators=execute)
    out = FmmFftDistributed(plan, cl, **kw).run(
        np.random.default_rng(0).standard_normal(N) if execute else None
    )
    return cl, out


class TestPipelinesCertified:
    """Every shipped pipeline must come out of the sanitizer clean."""

    def test_fmmfft_g2_execute(self):
        cl, out = _run_fmmfft(2, 4096, 8, 16, 3, 16, execute=True)
        assert find_hazards(cl.ledger).ok
        cl.sanitize()  # strict mode: must not raise
        assert out is not None

    def test_fmmfft_g8_timing(self):
        cl, _ = _run_fmmfft(8, 1 << 18, 32, 16, 3, 16, execute=False)
        rep = find_hazards(cl.ledger)
        assert rep.ok, rep.render()

    def test_fmmfft_unfused_post(self):
        cl, _ = _run_fmmfft(2, 1 << 16, 16, 16, 3, 12, execute=False,
                            fuse_post=False)
        assert find_hazards(cl.ledger).ok

    def test_fmm_fused_m2l_l2l(self):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        geo = FmmFftPlan.create(N=1 << 18, P=32, ML=16, B=3, Q=16, G=4,
                                build_operators=False).geometry
        DistributedFMM(geo, cl, fuse_m2l_l2l=True).run()
        rep = find_hazards(cl.ledger)
        assert rep.ok, rep.render()

    @pytest.mark.parametrize("N", [1 << 12, 1 << 20])
    def test_fft1d(self, N):
        # 2^20 crosses the chunking threshold, exercising the pipelined
        # transpose/FFT overlap; 2^12 is the unchunked path
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        Distributed1DFFT(N, cl).run()
        rep = find_hazards(cl.ledger)
        assert rep.ok, rep.render()

    def test_fft2d(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        Distributed2DFFT(1 << 10, 1 << 10, cl).run()
        rep = find_hazards(cl.ledger)
        assert rep.ok, rep.render()

    @pytest.mark.parametrize("N", [1 << 12, 1 << 24])
    def test_rfft(self, N):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        DistributedRealFFT(N, cl).run()
        rep = find_hazards(cl.ledger)
        assert rep.ok, rep.render()

    def test_multinode(self):
        cl = VirtualCluster(multinode_p100(2, 2), execute=False)
        plan = FmmFftPlan.create(N=1 << 18, P=32, ML=16, B=3, Q=16, G=4,
                                 build_operators=False)
        FmmFftDistributed(plan, cl).run()
        rep = find_hazards(cl.ledger)
        assert rep.ok, rep.render()

    def test_trace_hazards_accessor(self):
        cl, _ = _run_fmmfft(2, 1 << 14, 16, 16, 3, 12, execute=False)
        assert cl.trace().hazards().ok


def slow_link_node(G=2):
    """Comm slow enough that a halo exchange strictly overlaps compute."""
    link = LinkSpec(bandwidth=1e6, latency=1e-3)
    return ClusterSpec(
        device=P100, num_devices=G,
        graph=topo.fully_connected(G, link), name=f"{G}x-slowlink",
    )


class TestSeededHazard:
    """Deleting the COMM-S -> S2T dependency must produce exactly the
    RAW hazard on the S halo buffer — the bug class the sanitizer is
    for: orchestration still runs in a valid order, only the declared
    event edge is gone, so nothing but the sanitizer would notice."""

    def _run_with_dropped_s_halo(self, monkeypatch):
        orig = DistributedFMM._halo_exchange

        def patched(self, what, key, width, nbytes, name, level=None, after=None):
            evs = orig(self, what, key, width, nbytes, name,
                       level=level, after=after)
            if what == "S":
                return [Event(0.0, "dropped")] * self.cl.G
            return evs

        monkeypatch.setattr(DistributedFMM, "_halo_exchange", patched)
        cl = VirtualCluster(slow_link_node(2), execute=False)
        geo = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16, G=2,
                                build_operators=False).geometry
        DistributedFMM(geo, cl).run()
        return cl

    def test_detects_exactly_the_seeded_race(self, monkeypatch):
        cl = self._run_with_dropped_s_halo(monkeypatch)
        rep = find_hazards(cl.ledger)
        assert rep.hazards, "seeded race was not detected"
        for h in rep.hazards:
            assert h.kind == "RAW"
            assert h.buffer.startswith("fmm.halo.S")
            assert {h.first.name, h.second.name} == {"COMM-S", "S2T"}

    def test_sanitize_raises(self, monkeypatch):
        cl = self._run_with_dropped_s_halo(monkeypatch)
        with pytest.raises(HazardError, match="fmm.halo.S"):
            cl.sanitize()

    def test_unseeded_control_is_clean(self):
        cl = VirtualCluster(slow_link_node(2), execute=False)
        geo = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16, G=2,
                                build_operators=False).geometry
        DistributedFMM(geo, cl).run()
        rep = find_hazards(cl.ledger)
        assert rep.ok, rep.render()
