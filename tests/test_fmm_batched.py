import numpy as np
import pytest

from repro.fmm.batched import BatchedFMM
from repro.fmm.plan import FmmOperators
from repro.fmm.reference import dense_apply_all
from repro.util.validation import ParameterError


def _fmm(M=256, P=8, ML=16, B=2, Q=16, dtype="complex128"):
    return BatchedFMM(FmmOperators.create(M=M, P=P, ML=ML, B=B, Q=Q, dtype=dtype))


def _signal(P, M, rng, dtype=np.complex128):
    x = rng.uniform(-1, 1, (P, M)) + 1j * rng.uniform(-1, 1, (P, M))
    return x.astype(dtype)


class TestAccuracy:
    @pytest.mark.parametrize(
        "M,P,ML,B,Q",
        [
            (256, 8, 16, 2, 16),
            (256, 8, 16, 3, 16),
            (256, 8, 16, 4, 16),
            (512, 4, 32, 3, 16),
            (256, 8, 8, 4, 16),
            (128, 4, 32, 2, 16),   # L == B: no hierarchical levels
            (64, 16, 16, 2, 16),
            (1024, 4, 64, 2, 16),
        ],
    )
    def test_matches_dense(self, M, P, ML, B, Q, rng):
        fmm = _fmm(M, P, ML, B, Q)
        S = _signal(P, M, rng)
        T, r = fmm.apply(S)
        Tref, rref = dense_apply_all(S, M, P)
        assert np.linalg.norm(T - Tref) / np.linalg.norm(Tref) < 5e-13
        np.testing.assert_allclose(r, rref, atol=1e-12)

    def test_p0_passthrough(self, rng):
        fmm = _fmm()
        S = _signal(8, 256, rng)
        T, _ = fmm.apply(S)
        np.testing.assert_array_equal(T[0], S[0])

    def test_accuracy_improves_with_q(self, rng):
        S = _signal(8, 256, rng)
        errs = []
        for Q in (4, 8, 12, 16):
            T, _ = _fmm(Q=Q).apply(S)
            Tref, _ = dense_apply_all(S, 256, 8)
            errs.append(np.linalg.norm(T - Tref) / np.linalg.norm(Tref))
        assert errs[3] < errs[1] < errs[0]

    def test_real_input(self, rng):
        fmm = _fmm()
        S = rng.uniform(-1, 1, (8, 256))
        T, r = fmm.apply(S)
        Tref, rref = dense_apply_all(S, 256, 8)
        assert np.linalg.norm(T - Tref) / np.linalg.norm(Tref) < 1e-12
        assert not np.iscomplexobj(T)

    def test_single_precision(self, rng):
        fmm = _fmm(Q=8, dtype="complex64")
        S = _signal(8, 256, rng, np.complex64)
        T, _ = fmm.apply(S)
        Tref, _ = dense_apply_all(S.astype(np.complex128), 256, 8)
        assert np.linalg.norm(T - Tref) / np.linalg.norm(Tref) < 1e-3

    def test_linearity(self, rng):
        fmm = _fmm()
        S1, S2 = _signal(8, 256, rng), _signal(8, 256, rng)
        T12, r12 = fmm.apply(S1 + 2.0 * S2)
        T1, r1 = fmm.apply(S1)
        T2, r2 = fmm.apply(S2)
        np.testing.assert_allclose(T12, T1 + 2 * T2, atol=1e-10)
        np.testing.assert_allclose(r12, r1 + 2 * r2, atol=1e-10)


class TestStages:
    def test_s2m_preserves_sums(self, rng):
        """Multipole coefficients carry the box sums upward."""
        fmm = _fmm()
        S = _signal(8, 256, rng).reshape(8, 16, 16)
        Mexp = fmm.s2m(S)
        np.testing.assert_allclose(Mexp.sum(axis=2), S[1:].sum(axis=2), atol=1e-10)

    def test_m2m_preserves_sums(self, rng):
        fmm = _fmm()
        child = rng.standard_normal((7, 8, 16)) + 0j
        parent = fmm.m2m(child)
        np.testing.assert_allclose(
            parent.sum(axis=(1, 2)), child.sum(axis=(1, 2)), atol=1e-10
        )

    def test_reduce_equals_input_sum(self, rng):
        fmm = _fmm()
        S = _signal(8, 256, rng)
        Sb = S.reshape(8, 16, 16)
        Mexp = fmm.s2m(Sb)
        for _ in range(2):  # up to the base
            Mexp = fmm.m2m(Mexp)
        r = fmm.reduce(Mexp)
        np.testing.assert_allclose(r, S[1:].sum(axis=1), atol=1e-10)

    def test_s2t_is_near_field_only(self, rng):
        """A source in a far box must not touch S2T output."""
        fmm = _fmm(M=256, P=4, ML=16, B=2)
        S = np.zeros((4, 16, 16))
        S[1, 8, 3] = 1.0  # a single source in box 8
        T = fmm.s2t(S)
        # boxes 0..6 and 10..15 are not neighbours of box 8
        assert np.abs(T[0, :6]).max() == 0.0
        assert np.abs(T[0, 11:]).max() == 0.0
        assert np.abs(T[0, 7:10]).max() > 0.0


class TestValidation:
    def test_rejects_distributed_operators(self):
        b = FmmOperators.create(M=256, P=4, ML=16, B=2, Q=8, G=2)
        with pytest.raises(ParameterError):
            BatchedFMM(b)

    def test_rejects_bad_shape(self, rng):
        fmm = _fmm()
        with pytest.raises(ParameterError):
            fmm.apply(np.zeros((8, 128)))
