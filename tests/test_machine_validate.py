"""Schedule audits: every pipeline, plus hypothesis-driven random programs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.dfft.fft2d import Distributed2DFFT
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.machine.cluster import VirtualCluster
from repro.machine.ledger import Ledger, OpRecord
from repro.machine.spec import dgx1_p100, dual_p100_nvlink, p100_nvlink_node
from repro.machine.validate import assert_valid_schedule, audit_schedule


class TestAuditor:
    def test_empty_ok(self):
        assert audit_schedule(Ledger()).ok

    def test_detects_overlap(self):
        l = Ledger()
        l.append(OpRecord(0, "compute", "gemm", "a", 0.0, 2.0))
        l.append(OpRecord(0, "compute", "gemm", "b", 1.0, 2.0))
        rep = audit_schedule(l)
        assert not rep.ok
        assert any("overlaps" in v for v in rep.violations)

    def test_detects_out_of_order_issue(self):
        l = Ledger()
        l.append(OpRecord(0, "compute", "gemm", "a", 5.0, 1.0))
        l.append(OpRecord(0, "compute", "gemm", "b", 1.0, 1.0))
        assert any("out of order" in v for v in audit_schedule(l).violations)

    def test_detects_negative_duration(self):
        # append itself now rejects negative durations at the source ...
        l = Ledger()
        with pytest.raises(ValueError, match="negative duration"):
            l.append(OpRecord(0, "compute", "gemm", "a", 0.0, -1.0))
        # ... and the auditor still catches records that bypassed it
        l._records.append(OpRecord(0, "compute", "gemm", "a", 0.0, -1.0))
        assert any("negative" in v for v in audit_schedule(l).violations)

    def test_distinct_streams_may_overlap(self):
        l = Ledger()
        l.append(OpRecord(0, "compute", "gemm", "a", 0.0, 2.0))
        l.append(OpRecord(0, "other", "gemm", "b", 1.0, 2.0))
        l.append(OpRecord(1, "compute", "gemm", "c", 0.5, 2.0))
        assert audit_schedule(l).ok

    def test_assert_raises(self):
        l = Ledger()
        l.append(OpRecord(0, "compute", "gemm", "a", 0.0, 2.0))
        l.append(OpRecord(0, "compute", "gemm", "b", 1.0, 2.0))
        with pytest.raises(AssertionError):
            assert_valid_schedule(l)


class TestPipelinesProduceValidSchedules:
    @pytest.mark.parametrize("G", [1, 2, 4, 8])
    def test_fft1d(self, G):
        cl = VirtualCluster(p100_nvlink_node(G), execute=False)
        Distributed1DFFT(1 << 18, cl).run()
        assert_valid_schedule(cl.ledger)

    @pytest.mark.parametrize("G", [1, 2, 4])
    def test_fft2d(self, G):
        cl = VirtualCluster(p100_nvlink_node(G), execute=False)
        Distributed2DFFT(1 << 10, 1 << 8, cl).run()
        assert_valid_schedule(cl.ledger)

    @pytest.mark.parametrize("G", [2, 8])
    def test_fmm(self, G):
        geom = FmmGeometry.create(M=1 << 14, P=64, ML=64, B=3, Q=16, G=G)
        cl = VirtualCluster(p100_nvlink_node(G), execute=False)
        DistributedFMM(geom, cl).run(staged=True)
        assert_valid_schedule(cl.ledger)

    def test_fmmfft_fused(self):
        plan = FmmFftPlan.create(N=1 << 20, P=256, ML=64, B=3, Q=16, G=2,
                                 build_operators=False)
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        FmmFftDistributed(plan, cl).run()
        assert_valid_schedule(cl.ledger)

    def test_dgx1(self):
        plan = FmmFftPlan.create(N=1 << 20, P=256, ML=64, B=3, Q=16, G=8,
                                 build_operators=False)
        cl = VirtualCluster(dgx1_p100(), execute=False)
        FmmFftDistributed(plan, cl).run()
        assert_valid_schedule(cl.ledger)


class TestRandomPrograms:
    """Hypothesis drives random op sequences through the engine; the
    resulting schedule must always be physically valid."""

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["launch", "sendrecv", "alltoall", "allgather"]),
                st.integers(0, 3),          # device / src
                st.integers(0, 3),          # dst
                st.floats(1e3, 1e9),        # work size
            ),
            min_size=1,
            max_size=30,
        ),
        st.booleans(),
    )
    def test_random_program_valid(self, program, chain_events):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        last = None
        for kind, a, b, size in program:
            after = [last] if (chain_events and last is not None) else ()
            if kind == "launch":
                last = cl.launch(a, "k", "gemm", size, size, np.float64, after=after)
            elif kind == "sendrecv":
                last = cl.sendrecv(a, b, size, "msg", after=after)
            elif kind == "alltoall":
                last = cl.alltoall(size, "a2a", after=after)[0]
            else:
                last = cl.allgather(size, "ag", after=after)[0]
        assert_valid_schedule(cl.ledger)
        assert cl.wall_time() >= 0.0
