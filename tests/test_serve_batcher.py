"""Continuous batching: compatibility keys, coalescing, setup charging."""

from __future__ import annotations

import pytest

from repro.machine.spec import p100_nvlink_node
from repro.serve import AdmissionQueue, Batcher, PlanCache, TransformRequest
from repro.util.validation import ParameterError

N = 1 << 12


def setup_pair(**kw):
    cache = PlanCache(p100_nvlink_node(2), autotune=False)
    return Batcher(cache, **kw), AdmissionQueue()


def req(rid, N=N, deadline="batch"):
    return TransformRequest(rid=rid, N=N, deadline=deadline)


class TestCompatKey:
    def test_full_tuple_shape(self):
        b, _ = setup_pair()
        key = b.compat_key(req(0))
        assert key[0] == N and key[1] == "complex128" and key[6] == 2
        assert len(key) == 8  # (N, dtype, P, ML, B, Q, G, comm_algorithm)

    def test_same_config_same_key(self):
        b, _ = setup_pair()
        assert b.compat_key(req(0)) == b.compat_key(req(1))
        assert b.compat_key(req(0)) != b.compat_key(req(2, N=2 * N))


class TestBatching:
    def test_coalesces_up_to_max_batch(self):
        b, q = setup_pair(max_batch=4)
        for i in range(6):
            q.offer(req(i), 0.0)
        batch = b.next_batch(q, 0.0)
        assert batch.k == 4 and len(q) == 2
        assert [r.rid for r in batch.requests] == [0, 1, 2, 3]

    def test_only_compatible_ride_along(self):
        b, q = setup_pair(max_batch=8)
        q.offer(req(0, N=N), 0.0)
        q.offer(req(1, N=2 * N), 0.0)
        q.offer(req(2, N=N), 0.0)
        batch = b.next_batch(q, 0.0)
        assert [r.rid for r in batch.requests] == [0, 2]
        assert b.next_batch(q, 0.1).requests[0].rid == 1

    def test_batching_disabled_takes_one(self):
        b, q = setup_pair(max_batch=8, batching=False)
        for i in range(3):
            q.offer(req(i), 0.0)
        assert b.next_batch(q, 0.0).k == 1 and len(q) == 2

    def test_interactive_head_defines_batch(self):
        b, q = setup_pair(max_batch=8)
        q.offer(req(0, N=2 * N, deadline="batch"), 0.0)
        q.offer(req(1, N=N, deadline="interactive"), 0.0)
        batch = b.next_batch(q, 0.0)
        assert batch.requests[0].rid == 1 and batch.plan.N == N

    def test_empty_queue_returns_none(self):
        b, q = setup_pair()
        assert b.next_batch(q, 0.0) is None

    def test_setup_charged_once_per_configuration(self):
        b, q = setup_pair()
        q.offer(req(0), 0.0)
        q.offer(req(1), 0.0)
        first = b.next_batch(q, 0.0)
        assert first.setup_time > 0.0  # cold resolve pays plan build
        q.offer(req(2), 1.0)
        second = b.next_batch(q, 1.0)
        assert second.setup_time == 0.0 and second.plan is first.plan

    def test_batch_ids_increment(self):
        b, q = setup_pair()
        for i in range(2):
            q.offer(req(i), 0.0)
        b0 = b.next_batch(q, 0.0)
        q.offer(req(9), 1.0)
        b1 = b.next_batch(q, 1.0)
        assert (b0.bid, b1.bid) == (0, 1)
        assert b.formed == [(0, 2, N), (1, 1, N)]

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ParameterError):
            setup_pair(max_batch=0)
