import numpy as np
import pytest

from repro.fftcore.real import irfft_pow2, rfft_pow2, rfft_flop_saving
from repro.util.validation import ParameterError


class TestRfft:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 256, 4096])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n)
        np.testing.assert_allclose(rfft_pow2(x), np.fft.rfft(x), atol=1e-10 * n)

    def test_output_length(self, rng):
        assert rfft_pow2(rng.standard_normal(64)).shape == (33,)

    def test_batched(self, rng):
        x = rng.standard_normal((5, 128))
        np.testing.assert_allclose(rfft_pow2(x), np.fft.rfft(x, axis=-1), atol=1e-10)

    def test_dc_and_nyquist_real(self, rng):
        X = rfft_pow2(rng.standard_normal(64))
        assert abs(X[0].imag) < 1e-12
        assert abs(X[-1].imag) < 1e-12

    def test_single_precision(self, rng):
        x = rng.standard_normal(256).astype(np.float32)
        X = rfft_pow2(x)
        assert X.dtype == np.complex64
        ref = np.fft.rfft(x.astype(np.float64))
        assert np.abs(X - ref).max() / np.abs(ref).max() < 1e-5

    def test_rejects_complex(self):
        with pytest.raises(ParameterError):
            rfft_pow2(np.zeros(8, dtype=complex))

    def test_rejects_non_pow2(self):
        with pytest.raises(ParameterError):
            rfft_pow2(np.zeros(12))


class TestIrfft:
    @pytest.mark.parametrize("n", [4, 8, 64, 1024])
    def test_roundtrip(self, n, rng):
        x = rng.standard_normal(n)
        np.testing.assert_allclose(irfft_pow2(rfft_pow2(x), n), x, atol=1e-12)

    def test_matches_numpy(self, rng):
        X = np.fft.rfft(rng.standard_normal(128))
        np.testing.assert_allclose(irfft_pow2(X, 128), np.fft.irfft(X, 128), atol=1e-12)

    def test_output_is_real(self, rng):
        out = irfft_pow2(rfft_pow2(rng.standard_normal(64)), 64)
        assert out.dtype.kind == "f"

    def test_default_n(self, rng):
        x = rng.standard_normal(32)
        np.testing.assert_allclose(irfft_pow2(rfft_pow2(x)), x, atol=1e-12)

    def test_bin_count_checked(self):
        with pytest.raises(ParameterError):
            irfft_pow2(np.zeros(10, dtype=complex), 64)


class TestFlopSaving:
    def test_approaches_two(self):
        assert 1.5 < rfft_flop_saving(1 << 20) < 2.1

    def test_tiny_is_one(self):
        assert rfft_flop_saving(2) == 1.0
