import numpy as np
import pytest

from repro.core.factorization import (
    apply_perm_mp,
    fmmfft_dense,
    fourier_matrix,
    hhat_dense,
    perm_block_to_cyclic,
    perm_matrix,
    radix_split_dense,
    twiddle_matrix,
)
from repro.util.validation import ParameterError


class TestFourierMatrix:
    def test_small(self):
        F = fourier_matrix(2)
        np.testing.assert_allclose(F, [[1, 1], [1, -1]], atol=1e-15)

    def test_unitary_scaled(self):
        N = 16
        F = fourier_matrix(N)
        np.testing.assert_allclose(F @ F.conj().T / N, np.eye(N), atol=1e-12)

    def test_matches_numpy(self, rng):
        N = 32
        x = rng.standard_normal(N)
        np.testing.assert_allclose(fourier_matrix(N) @ x, np.fft.fft(x), atol=1e-10)


class TestPermutation:
    def test_definition(self):
        """Pi e_{p+mP} = e_{m+pM}."""
        M, P = 3, 4
        idx = perm_block_to_cyclic(M, P)
        x = np.arange(M * P)
        y = x[idx]
        for p in range(P):
            for m in range(M):
                assert y[m + p * M] == p + m * P

    def test_matrix_vs_index(self, rng):
        M, P = 4, 6
        x = rng.standard_normal(M * P)
        np.testing.assert_allclose(
            perm_matrix(M, P) @ x, x[perm_block_to_cyclic(M, P)], atol=1e-15
        )

    def test_apply_vectorized(self, rng):
        M, P = 8, 4
        x = rng.standard_normal((3, M * P))
        got = apply_perm_mp(x, M, P)
        for i in range(3):
            np.testing.assert_allclose(got[i], x[i][perm_block_to_cyclic(M, P)])

    def test_inverse_is_swapped_args(self, rng):
        M, P = 5, 7
        x = rng.standard_normal(M * P)
        np.testing.assert_allclose(
            apply_perm_mp(apply_perm_mp(x, M, P), P, M), x, atol=1e-15
        )

    def test_apply_shape_check(self):
        with pytest.raises(ParameterError):
            apply_perm_mp(np.zeros(10), 3, 4)

    def test_permutation_is_orthogonal(self):
        Pi = perm_matrix(4, 3)
        np.testing.assert_allclose(Pi @ Pi.T, np.eye(12), atol=1e-15)


class TestTwiddle:
    def test_diagonal_entries(self):
        M, P = 4, 3
        N = M * P
        T = twiddle_matrix(M, P)
        i = 7  # m = 3, p = 1
        expect = np.exp(-2j * np.pi * ((i % M) * (i // M)) / N)
        assert T[i, i] == pytest.approx(expect)

    def test_off_diagonal_zero(self):
        T = twiddle_matrix(4, 3)
        assert np.abs(T - np.diag(np.diag(T))).max() == 0.0


class TestFactorizations:
    """The ground truth: both factorizations equal F_N to machine eps."""

    @pytest.mark.parametrize("M,P", [(4, 4), (8, 4), (4, 8), (16, 8), (6, 4), (5, 3), (9, 7)])
    def test_radix_split(self, M, P):
        N = M * P
        err = np.abs(radix_split_dense(M, P) - fourier_matrix(N)).max()
        assert err < 1e-11

    @pytest.mark.parametrize("M,P", [(4, 4), (8, 4), (4, 8), (16, 8), (6, 4), (5, 3), (32, 4)])
    def test_fmmfft_factorization(self, M, P):
        N = M * P
        err = np.abs(fmmfft_dense(M, P) - fourier_matrix(N)).max()
        assert err < 1e-11

    def test_hhat_applies_kernels_in_p_major(self, rng):
        """H^ acting on the natural layout applies C_p to x[p::P]."""
        from repro.core.kernels import dense_c_matrix

        M, P = 8, 4
        Hh = hhat_dense(M, P)
        x = rng.standard_normal(M * P) + 1j * rng.standard_normal(M * P)
        y = Hh @ x
        for p in range(P):
            np.testing.assert_allclose(
                y[p::P], dense_c_matrix(M, P, p) @ x[p::P], atol=1e-12
            )
