import numpy as np
import pytest

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dgx1_p100, dual_k40c_pcie, dual_p100_nvlink
from repro.model.energy import (
    EnergyReport,
    EnergySpec,
    PASCAL_ENERGY,
    energy_ratio,
    ledger_energy,
    run_energy,
)
from repro.util.validation import ParameterError


class TestEnergySpec:
    def test_defaults_positive(self):
        s = PASCAL_ENERGY
        assert s.per_flop > 0 and s.idle_power > 0

    def test_comm_costs_dominate_ordering(self):
        """Moving a byte off-device costs more than through memory,
        which costs more than a flop — the premise of the energy claim."""
        s = PASCAL_ENERGY
        assert s.per_fallback_byte > s.per_link_byte > s.per_mem_byte > s.per_flop

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            EnergySpec(per_flop=0.0)


class TestEnergyReport:
    def test_totals(self):
        r = EnergyReport(compute=1.0, memory=2.0, communication=3.0, idle=4.0)
        assert r.dynamic == pytest.approx(6.0)
        assert r.total == pytest.approx(10.0)

    def test_ratio(self):
        a = EnergyReport(1, 1, 1, 1)
        b = EnergyReport(0.5, 0.5, 0.5, 0.5)
        assert energy_ratio(a, b) == pytest.approx(2.0)


class TestRunEnergy:
    def _fmmfft(self, spec, N=1 << 24):
        plan = FmmFftPlan.create(N=N, P=1 << 9, ML=64, B=3, Q=16,
                                 G=spec.num_devices, build_operators=False)
        cl = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl).run()
        return run_energy(cl)

    def _baseline(self, spec, N=1 << 24):
        cl = VirtualCluster(spec, execute=False)
        Distributed1DFFT(N, cl).run()
        return run_energy(cl)

    def test_components_positive(self):
        e = self._baseline(dual_p100_nvlink())
        assert e.compute > 0 and e.memory > 0 and e.communication > 0 and e.idle > 0

    def test_fmmfft_spends_more_compute_less_comm(self):
        spec = dual_p100_nvlink()
        e_f, e_b = self._fmmfft(spec), self._baseline(spec)
        assert e_f.compute > e_b.compute          # the FMM does real work
        assert e_f.communication < 0.5 * e_b.communication  # ~3x fewer bytes

    def test_energy_win_grows_with_g(self):
        """The paper's energy argument: savings track comm costs."""
        r2 = energy_ratio(self._baseline(dual_p100_nvlink()),
                          self._fmmfft(dual_p100_nvlink()))
        r8 = energy_ratio(self._baseline(dgx1_p100()), self._fmmfft(dgx1_p100()))
        assert r8 > r2
        assert r8 > 1.2

    def test_pcie_pair_uses_fallback_cost(self):
        e_k40 = self._baseline(dual_k40c_pcie())
        e_p100 = self._baseline(dual_p100_nvlink())
        # same bytes, costlier joules per byte on PCIe
        assert e_k40.communication > e_p100.communication

    def test_negative_wall_time_rejected(self):
        from repro.machine.ledger import Ledger

        with pytest.raises(ParameterError):
            ledger_energy(Ledger(), dual_p100_nvlink(), -1.0)
