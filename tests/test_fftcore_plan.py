import numpy as np
import pytest

from repro.fftcore.plan import LocalFFTPlan, fft, ifft
from repro.util.validation import ParameterError


class TestPlanConstruction:
    def test_auto_pow2_is_stockham(self):
        assert LocalFFTPlan(64).backend == "stockham"

    def test_auto_general_is_bluestein(self):
        assert LocalFFTPlan(60).backend == "bluestein"

    def test_stockham_rejects_non_pow2(self):
        with pytest.raises(ParameterError):
            LocalFFTPlan(60, backend="stockham")

    def test_rejects_real_dtype(self):
        with pytest.raises(ParameterError):
            LocalFFTPlan(8, dtype="float64")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ParameterError):
            LocalFFTPlan(8, backend="fftw")

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ParameterError):
            LocalFFTPlan(0)


class TestPlanApply:
    @pytest.mark.parametrize("backend", ["stockham", "numpy"])
    def test_forward(self, backend, rng):
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        plan = LocalFFTPlan(128, backend=backend)
        np.testing.assert_allclose(plan.forward(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("backend", ["stockham", "bluestein", "numpy"])
    def test_inverse_roundtrip(self, backend, rng):
        n = 64 if backend != "bluestein" else 60
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        plan = LocalFFTPlan(n, backend=backend)
        np.testing.assert_allclose(plan.inverse(plan.forward(x)), x, atol=1e-9)

    def test_axis_argument(self, rng):
        x = rng.standard_normal((8, 16, 4)) + 0j
        plan = LocalFFTPlan(16)
        np.testing.assert_allclose(plan.forward(x, axis=1), np.fft.fft(x, axis=1), atol=1e-10)

    def test_wrong_axis_length(self, rng):
        plan = LocalFFTPlan(16)
        with pytest.raises(ParameterError):
            plan.forward(np.zeros(15, dtype=complex))

    def test_single_precision_output(self, rng):
        plan = LocalFFTPlan(32, dtype="complex64")
        out = plan.forward(np.ones(32, dtype=np.complex64))
        assert out.dtype == np.complex64

    def test_reusable(self, rng):
        plan = LocalFFTPlan(32)
        for _ in range(3):
            x = rng.standard_normal(32) + 0j
            np.testing.assert_allclose(plan.forward(x), np.fft.fft(x), atol=1e-10)


class TestConvenience:
    def test_fft_matches(self, rng):
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)

    def test_ifft_matches(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-10)

    def test_float32_input_uses_complex64(self):
        out = fft(np.ones(8, dtype=np.float32))
        assert out.dtype == np.complex64
