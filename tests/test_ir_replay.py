"""Replay executor: certified graphs replay bit-identically and safely.

Covers the scratch-replay fingerprint contract, the certification
gauntlet (hazards + prealloc), the executor's refusal conditions, the
uid-continuity of the ledger fast path, and elementwise fusion — which
must change *only* launch count and modeled duration, never numerics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultInjector, LinkFlap
from repro.ir import (
    PIPELINE_NAMES,
    ReplayError,
    ReplayExecutor,
    capture_fft1d,
    capture_nufft,
    capture_pipeline,
    check_graph_prealloc,
    fuse_elementwise,
    scratch_replay,
)
from repro.ir.graph import OP_LAUNCH
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_k40c_pcie, p100_nvlink_node

N = 1 << 12
SPEC = p100_nvlink_node(2)


def _cluster(name, execute=False):
    spec = p100_nvlink_node(1) if name == "nufft" else SPEC
    return VirtualCluster(spec, execute=execute)


class TestScratchReplay:
    @pytest.mark.parametrize("name", PIPELINE_NAMES)
    def test_fingerprint_identical_to_capture_run(self, name):
        cl = _cluster(name)
        graph, _ = capture_pipeline(name, cl, N)
        scratch = scratch_replay(graph, cl.spec)
        assert scratch.ledger.fingerprint() == cl.ledger.fingerprint()

    def test_replay_is_idempotent_on_fresh_clusters(self):
        cl = _cluster("fmmfft")
        graph, _ = capture_pipeline("fmmfft", cl, N)
        a = scratch_replay(graph, cl.spec).ledger.fingerprint()
        b = scratch_replay(graph, cl.spec).ledger.fingerprint()
        assert a == b


class TestCertify:
    def test_certify_attaches_prealloc_contract(self):
        cl = _cluster("fmmfft")
        graph, _ = capture_pipeline("fmmfft", cl, N)
        cert = graph.certify(cl.spec)
        assert cert["hazards"] == 0
        assert graph.prealloc is not None
        assert graph.prealloc["peak_live_bytes"] > 0
        assert len(graph.prealloc["per_device_peak_live_bytes"]) == cl.G

    def test_certify_is_cached(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        assert graph.certify(cl.spec) is graph.certify(cl.spec)

    @pytest.mark.parametrize("name", PIPELINE_NAMES)
    def test_prealloc_check_clean_on_every_pipeline(self, name):
        cl = _cluster(name)
        graph, _ = capture_pipeline(name, cl, N)
        assert check_graph_prealloc(graph, cl.spec) == []


class TestRefusals:
    def test_wrong_G_refused(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        with pytest.raises(ReplayError, match="G="):
            ReplayExecutor(graph, VirtualCluster(p100_nvlink_node(1),
                                                 execute=False))

    def test_wrong_spec_refused(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        with pytest.raises(ReplayError, match="different machine spec"):
            ReplayExecutor(graph, VirtualCluster(dual_k40c_pcie(),
                                                 execute=False))

    def test_fault_cluster_refused(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 5e-3, 7.5e-3),))
        with pytest.raises(ReplayError, match="fault"):
            ReplayExecutor(graph, VirtualCluster(SPEC, execute=False,
                                                 faults=inj))


class TestLedgerFastPath:
    def test_uids_continue_across_interpret_and_replay(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        n0 = len(cl.ledger)
        ReplayExecutor(graph, cl).run()
        uids = [r.uid for r in cl.ledger]
        assert uids == list(range(len(cl.ledger)))
        assert len(cl.ledger) == n0 + graph.num_records

    def test_region_prefix_and_strip(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        cl2 = VirtualCluster(SPEC, execute=False)
        ReplayExecutor(graph, cl2, region_strip=1).run(
            region_prefix="replayed/")
        regions = {r.region for r in cl2.ledger if r.region}
        assert regions
        assert all(r.startswith("replayed/") for r in regions)

    def test_buffer_rename(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        cl2 = VirtualCluster(SPEC, execute=False)
        ReplayExecutor(graph, cl2, rename=("dfft1", "slot0")).run()
        names = {b for r in cl2.ledger for _, b in (*r.reads, *r.writes)}
        assert any(b.startswith("slot0") for b in names)
        assert not any(b.startswith("dfft1") for b in names)


class TestFusion:
    def test_fft1d_fuses_reorder_into_row_fft(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        fused = fuse_elementwise(graph, cl.spec)
        # one reorder+fft merge per device per transpose stage
        assert fused.meta["fused"] == 2 * cl.G
        assert len(fused.nodes) == len(graph.nodes) - 2 * cl.G

    def test_fused_graph_saves_launch_latency(self):
        cl = _cluster("nufft")
        graph, _ = capture_pipeline("nufft", cl, 256)
        fused = fuse_elementwise(graph, cl.spec)
        assert fused.meta["fused"] == 2  # pad+ifft+eval -> one kernel
        lat = cl.spec.device.launch_latency
        t0 = max(r.end for r in scratch_replay(graph, cl.spec).ledger)
        t1 = max(r.end for r in scratch_replay(fused, cl.spec).ledger)
        assert t1 == pytest.approx(t0 - 2 * lat)

    def test_fused_graph_certifies(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        fused = fuse_elementwise(graph, cl.spec)
        cert = fused.certify(cl.spec)
        assert cert["hazards"] == 0

    def test_fused_region_rolls_up_to_common_prefix(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        fused = fuse_elementwise(graph, cl.spec)
        merged = [n for n in fused.nodes
                  if n.op == OP_LAUNCH and "+" in n.name]
        assert merged
        assert all(n.region == "fft1d" for n in merged)

    def test_fused_numerics_byte_identical(self):
        rng = np.random.default_rng(7)
        n, m = 128, 64
        c = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = rng.random(m)
        cl = VirtualCluster(p100_nvlink_node(1), execute=True)
        graph, ref = capture_nufft(cl, n, m, c=c, x=x)
        fused = fuse_elementwise(graph, cl.spec)
        graph.stage_in(c, x)
        ReplayExecutor(fused, cl).run()
        out = fused.finalize()
        assert np.asarray(out).tobytes() == np.asarray(ref).tobytes()

    def test_fusion_never_merges_across_collectives(self):
        cl = _cluster("fmmfft")
        graph, _ = capture_pipeline("fmmfft", cl, N)
        fused = fuse_elementwise(graph, cl.spec)
        fused.validate()
        assert fused.num_records < graph.num_records
        # the collective structure is untouched
        assert fused.comm_calls() == graph.comm_calls()


class TestExecuteReplayOnCaptureCluster:
    def test_fft1d_replay_matches_oracle(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        cl = VirtualCluster(SPEC, execute=True)
        graph, ref = capture_fft1d(cl, N, x=x)
        x2 = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        graph.stage_in(x2)
        ReplayExecutor(graph, cl).run()
        out = graph.finalize()
        np.testing.assert_allclose(out, np.fft.fft(x2), rtol=1e-9)
        # and replaying the original input reproduces the original bytes
        graph.stage_in(x)
        ReplayExecutor(graph, cl).run()
        assert np.asarray(graph.finalize()).tobytes() == np.asarray(
            ref).tobytes()
