"""The bit-identity matrix: replayed runs equal interpreted runs, byte for byte.

Three layers of identity, swept across every pipeline:

- **schedule**: a scratch replay's ledger fingerprint equals a plain
  (proxy-free) interpreted run's, for every comm algorithm;
- **numerics**: execute-mode replay with re-staged inputs returns the
  same output bytes the interpreted run produced;
- **host twin**: the G = 1 FMM-FFT graph agrees with the plan cache's
  ``host_plan_for`` single-transform path to the oracle's accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import default_params
from repro.core.plan import FmmFftPlan
from repro.ir import (
    PIPELINE_NAMES,
    ReplayExecutor,
    capture_fft1d,
    capture_fft2d,
    capture_fmm,
    capture_fmmfft,
    capture_nufft,
    capture_pipeline,
    capture_rfft,
    scratch_replay,
)
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node

N = 1 << 12
NUFFT_N, NUFFT_M = 128, 64
ALGOS = ("bulk", "ring", "auto")
SPEC = p100_nvlink_node(2)


def _plain_run(name, cl, algo):
    """The proxy-free interpreted run capture must be invisible against."""
    if name == "fft1d":
        from repro.dfft.fft1d import Distributed1DFFT

        Distributed1DFFT(N, cl, comm_algorithm=algo).run()
    elif name == "fft2d":
        from repro.dfft.fft2d import Distributed2DFFT

        q = max(N.bit_length() - 1, 2)
        M = 1 << ((q + 1) // 2)
        Distributed2DFFT(M, N // M, cl, comm_algorithm=algo).run()
    elif name == "rfft":
        from repro.dfft.realfft import DistributedRealFFT

        DistributedRealFFT(N, cl, comm_algorithm=algo).run()
    elif name in ("fmm", "fmmfft"):
        plan = FmmFftPlan.create(N=N, G=cl.G, build_operators=False,
                                 **default_params(N, cl.G))
        if name == "fmmfft":
            from repro.core.distributed import FmmFftDistributed

            FmmFftDistributed(plan, cl, comm_algorithm=algo).run()
        else:
            from repro.fmm.distributed import DistributedFMM

            DistributedFMM(plan.geometry, cl, comm_algorithm=algo).run()
            cl.barrier()
    else:  # nufft
        from repro.nufft.transforms import ClusterNufft2

        ClusterNufft2(NUFFT_N, NUFFT_M, cl).run()


def _capture_args(name):
    if name == "nufft":
        return dict(N=NUFFT_N)
    return dict(N=N)


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("name", PIPELINE_NAMES)
def test_schedule_bit_identity(name, algo):
    spec = p100_nvlink_node(1) if name == "nufft" else SPEC
    plain = VirtualCluster(spec, execute=False)
    _plain_run(name, plain, algo)

    captured = VirtualCluster(spec, execute=False)
    graph, _ = capture_pipeline(name, captured, _capture_args(name)["N"],
                                comm_algorithm=algo)
    fp = plain.ledger.fingerprint()
    assert captured.ledger.fingerprint() == fp
    assert scratch_replay(graph, spec).ledger.fingerprint() == fp


def _capture_with_inputs(name, cl, rng):
    """Execute-mode capture with explicit inputs; returns (graph, ref, inputs)."""

    def cvec(n):
        return rng.standard_normal(n) + 1j * rng.standard_normal(n)

    if name == "fft1d":
        x = cvec(N)
        graph, ref = capture_fft1d(cl, N, x=x)
        return graph, ref, (x,)
    if name == "fft2d":
        q = max(N.bit_length() - 1, 2)
        M = 1 << ((q + 1) // 2)
        a = cvec(N).reshape(M, N // M)
        graph, ref = capture_fft2d(cl, M, N // M, a=a)
        return graph, ref, (a,)
    if name == "rfft":
        x = rng.standard_normal(N)
        graph, ref = capture_rfft(cl, N, x=x)
        return graph, ref, (x,)
    if name in ("fmm", "fmmfft"):
        plan = FmmFftPlan.create(N=N, G=cl.G, build_operators=True,
                                 **default_params(N, cl.G))
        if name == "fmmfft":
            x = cvec(N)
            graph, ref = capture_fmmfft(cl, plan, x=x)
            return graph, ref, (x,)
        S = cvec(N).reshape(plan.M, plan.P).T.copy()
        graph, _ = capture_fmm(cl, plan.operators, S=S)
        return graph, np.asarray(graph.finalize()).copy(), (S,)
    c, x = cvec(NUFFT_N), rng.random(NUFFT_M)
    graph, ref = capture_nufft(cl, NUFFT_N, NUFFT_M, c=c, x=x)
    return graph, ref, (c, x)


@pytest.mark.parametrize("name", PIPELINE_NAMES)
def test_execute_replay_byte_identity(name):
    spec = p100_nvlink_node(1) if name == "nufft" else SPEC
    cl = VirtualCluster(spec, execute=True)
    rng = np.random.default_rng(23)
    graph, ref, inputs = _capture_with_inputs(name, cl, rng)
    graph.stage_in(*inputs)
    ReplayExecutor(graph, cl).run()
    out = graph.finalize()
    assert np.asarray(out).tobytes() == np.asarray(ref).tobytes()


def test_g1_graph_matches_host_plan_twin():
    """The G=1 graph and the serve cache's host path agree on numerics."""
    from repro.serve import PlanCache

    spec1 = p100_nvlink_node(1)
    rng = np.random.default_rng(29)
    x = rng.standard_normal(N) + 1j * rng.standard_normal(N)

    cl = VirtualCluster(spec1, execute=True)
    plan = FmmFftPlan.create(N=N, G=1, build_operators=True,
                             **default_params(N, 1))
    graph, _ = capture_fmmfft(cl, plan, x=x)
    graph.stage_in(x)
    ReplayExecutor(graph, cl).run()
    replayed = np.asarray(graph.finalize())

    cache = PlanCache(spec1, autotune=False, build_operators=True)
    host = cache.host_plan_for(N, "complex128")
    from repro.core.single import fmmfft_single

    np.testing.assert_allclose(replayed, fmmfft_single(x, host), rtol=1e-9)
    np.testing.assert_allclose(replayed, np.fft.fft(x), rtol=1e-8)
