"""Hypothesis property tests over the distributed stack's configuration
space: random admissible (M, P, G, chunks) must always give the exact
spectrum and a valid schedule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.dfft.fft2d import Distributed2DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.machine.validate import assert_valid_schedule
from repro.util.prng import random_signal


class TestDfft1dProperty:
    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(3, 6),                    # log2 M
        st.integers(3, 6),                    # log2 P
        st.sampled_from([1, 2, 4]),           # G
        st.integers(1, 4),                    # chunks
        st.integers(0, 2**31 - 1),
    )
    def test_random_configs(self, qm, qp, G, chunks, seed):
        M, P = 1 << qm, 1 << qp
        if M % G or P % G:
            return
        N = M * P
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        cl = VirtualCluster(p100_nvlink_node(G))
        out = Distributed1DFFT(N, cl, M=M, P=P, chunks=chunks, backend="numpy").run(x)
        ref = np.fft.fft(x)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-11
        assert_valid_schedule(cl.ledger)


class TestDfft2dProperty:
    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(3, 6),
        st.integers(3, 6),
        st.sampled_from([1, 2, 4]),
        st.integers(0, 2**31 - 1),
    )
    def test_random_configs(self, qm, qp, G, seed):
        M, P = 1 << qm, 1 << qp
        if M % G or P % G:
            return
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((M, P)) + 1j * rng.standard_normal((M, P))
        cl = VirtualCluster(p100_nvlink_node(G))
        out = Distributed2DFFT(M, P, cl, backend="numpy").run(a)
        np.testing.assert_allclose(out.T, np.fft.fft2(a), atol=1e-8)
        assert_valid_schedule(cl.ledger)


class TestFmmFftProperty:
    @settings(deadline=None, max_examples=10)
    @given(
        st.sampled_from([(32, 16, 3), (32, 16, 2), (16, 16, 2), (64, 8, 3)]),
        st.sampled_from([1, 2, 4]),
        st.integers(0, 2**31 - 1),
    )
    def test_random_plans(self, cfg, G, seed):
        P, ML, B = cfg
        N = 1 << 13
        if P % G or (1 << B) % G:
            return
        plan = FmmFftPlan.create(N=N, P=P, ML=ML, B=B, Q=16, G=G)
        x = random_signal(N, seed=seed % (2**31))
        cl = VirtualCluster(p100_nvlink_node(G))
        out = FmmFftDistributed(plan, cl, backend="numpy").run(x)
        ref = np.fft.fft(x)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-12
        assert_valid_schedule(cl.ledger)

    @settings(deadline=None, max_examples=10)
    @given(st.sampled_from([(32, 16, 3), (64, 16, 4)]), st.integers(0, 2**31 - 1))
    def test_timing_deterministic(self, cfg, seed):
        """Same plan -> identical simulated schedule, regardless of data."""
        P, ML, B = cfg
        plan = FmmFftPlan.create(N=1 << 14, P=P, ML=ML, B=B, Q=16, G=2,
                                 build_operators=False)
        times = []
        for _ in range(2):
            cl = VirtualCluster(p100_nvlink_node(2), execute=False)
            FmmFftDistributed(plan, cl).run()
            times.append(cl.wall_time())
        assert times[0] == times[1]
