import pytest

from repro.model.vfunc import v_levels, v_levels_exact, v_top


class TestVTop:
    def test_above_log_g(self):
        assert v_top(3, 2) == pytest.approx(4.0)
        assert v_top(5, 4) == pytest.approx(8.0)

    def test_at_or_below_log_g(self):
        # B <= log2 G: v = B + 1 - log G
        assert v_top(3, 8) == pytest.approx(1.0)
        assert v_top(2, 8) == pytest.approx(0.0)
        assert v_top(2, 4) == pytest.approx(1.0)

    def test_g1(self):
        assert v_top(4, 1) == pytest.approx(16.0)


class TestVLevels:
    @pytest.mark.parametrize("L,B,G", [
        (10, 2, 1), (10, 3, 2), (10, 5, 4), (8, 4, 8), (13, 3, 2), (6, 2, 2),
        (10, 2, 8), (10, 3, 8),
    ])
    def test_closed_form_matches_term_sum(self, L, B, G):
        """The paper's displayed identity, against the literal sum."""
        assert v_levels(L, B, G) == pytest.approx(v_levels_exact(L, B, G))

    def test_empty_sum(self):
        assert v_levels(4, 4, 2) == pytest.approx(0.0)

    def test_requires_l_above_log_g(self):
        with pytest.raises(ValueError):
            v_levels(2, 2, 8)
