"""Slab/pencil 3D decompositions: correctness, comm structure, timing."""

import numpy as np
import pytest

from repro.analysis.hazards import find_hazards
from repro.dfft.decomp import DECOMPOSITIONS, Distributed3DFFT, default_grid
from repro.machine.cluster import VirtualCluster
from repro.machine.multinode import multinode_p100, routed_multinode_p100
from repro.machine.spec import p100_nvlink_node
from repro.util.validation import ParameterError


def _rand3(nx, ny, nz, rng):
    return (rng.standard_normal((nx, ny, nz))
            + 1j * rng.standard_normal((nx, ny, nz)))


class TestDefaultGrid:
    def test_near_square(self):
        assert default_grid(4) == (2, 2)
        assert default_grid(8) == (2, 4)
        assert default_grid(16) == (4, 4)

    def test_rejects_non_pow2(self):
        with pytest.raises(ParameterError):
            default_grid(6)


class TestCorrectness:
    @pytest.mark.parametrize("G", [2, 4])
    def test_slab_matches_fftn(self, G, rng):
        cl = VirtualCluster(p100_nvlink_node(G))
        a = _rand3(16, 8, 8, rng)
        out = Distributed3DFFT(16, 8, 8, cl).run(a)
        np.testing.assert_allclose(out, np.fft.fftn(a), atol=1e-9)

    @pytest.mark.parametrize("grid", [(2, 2), (1, 4), (4, 1)])
    def test_pencil_matches_fftn(self, grid, rng):
        cl = VirtualCluster(p100_nvlink_node(4))
        a = _rand3(8, 16, 8, rng)
        fft = Distributed3DFFT(8, 16, 8, cl, decomposition="pencil",
                               grid=grid)
        np.testing.assert_allclose(fft.run(a), np.fft.fftn(a), atol=1e-9)

    def test_slab_hier2_on_multinode(self, rng):
        cl = VirtualCluster(multinode_p100(2, 2))
        a = _rand3(8, 8, 8, rng)
        fft = Distributed3DFFT(8, 8, 8, cl, comm_algorithm="hier2")
        np.testing.assert_allclose(fft.run(a), np.fft.fftn(a), atol=1e-9)
        assert find_hazards(cl.ledger).ok

    def test_pencil_on_multinode(self, rng):
        cl = VirtualCluster(multinode_p100(2, 2))
        a = _rand3(8, 8, 8, rng)
        fft = Distributed3DFFT(8, 8, 8, cl, decomposition="pencil",
                               grid=(2, 2))
        np.testing.assert_allclose(fft.run(a), np.fft.fftn(a), atol=1e-9)
        assert find_hazards(cl.ledger).ok

    def test_rectangular_pencil(self, rng):
        cl = VirtualCluster(p100_nvlink_node(8))
        a = _rand3(8, 32, 16, rng)
        fft = Distributed3DFFT(8, 32, 16, cl, decomposition="pencil")
        np.testing.assert_allclose(fft.run(a), np.fft.fftn(a), atol=1e-8)


class TestCommStructure:
    def test_node_aligned_pencil_keeps_row_exchange_on_nvlink(self):
        """grid=(nodes, gpus_per_node): the z<->y exchange never leaves
        a node; only the y<->x exchange crosses the fabric."""
        cl = VirtualCluster(multinode_p100(2, 2), execute=False)
        Distributed3DFFT(1 << 6, 1 << 6, 1 << 6, cl,
                         decomposition="pencil", grid=(2, 2)).run()
        node_of = cl.spec.graph.graph["node_of"]
        rowx = [e for e in cl.ledger.records()
                if e.name.startswith("fft3d.rowx") and e.comm_bytes > 0]
        assert rowx
        for rec in rowx:
            assert node_of[rec.device] == node_of[rec.peer]

    def test_slab_issues_one_global_alltoall(self):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        Distributed3DFFT(1 << 6, 1 << 6, 1 << 6, cl).run()
        comm_names = set(cl.ledger.comm_bytes_by_name())
        assert comm_names == {"fft3d.transpose"}

    def test_pencil_issues_two_exchanges(self):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        Distributed3DFFT(1 << 6, 1 << 6, 1 << 6, cl,
                         decomposition="pencil").run()
        comm_names = set(cl.ledger.comm_bytes_by_name())
        assert comm_names == {"fft3d.rowx", "fft3d.colx"}

    def test_timing_hazard_free_on_routed_fabric(self):
        for decomp in DECOMPOSITIONS:
            cl = VirtualCluster(
                routed_multinode_p100(4, gpus_per_node=4, radix=8),
                execute=False)
            Distributed3DFFT(1 << 5, 1 << 5, 1 << 5, cl,
                             decomposition=decomp).run()
            assert find_hazards(cl.ledger).ok
            assert cl.wall_time() > 0.0


class TestValidation:
    def test_rejects_unknown_decomposition(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(ParameterError):
            Distributed3DFFT(8, 8, 8, cl, decomposition="brick")

    def test_rejects_grid_mismatch(self):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        with pytest.raises(ParameterError):
            Distributed3DFFT(8, 8, 8, cl, decomposition="pencil",
                             grid=(2, 4))

    def test_rejects_real_dtype(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(ParameterError):
            Distributed3DFFT(8, 8, 8, cl, dtype="float64")

    def test_rejects_indivisible_dims(self):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        with pytest.raises(ParameterError):
            Distributed3DFFT(2, 8, 8, cl)  # nx=2 not divisible by G=4
