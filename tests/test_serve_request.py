"""Transform requests and the synthetic open-loop workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import CompletedRequest, TransformRequest, synthetic_workload
from repro.util.validation import ParameterError


class TestTransformRequest:
    def test_valid(self):
        r = TransformRequest(rid=0, N=1 << 12, arrival=1.5, deadline="interactive")
        assert r.N == 4096 and r.deadline == "interactive"

    def test_rejects_non_pow2(self):
        with pytest.raises(ParameterError):
            TransformRequest(rid=0, N=1000)

    def test_rejects_bad_dtype(self):
        with pytest.raises(ParameterError):
            TransformRequest(rid=0, N=64, dtype="float64")

    def test_rejects_negative_arrival(self):
        with pytest.raises(ParameterError):
            TransformRequest(rid=0, N=64, arrival=-1.0)

    def test_rejects_unknown_deadline(self):
        with pytest.raises(ParameterError):
            TransformRequest(rid=0, N=64, deadline="urgent")

    def test_rejects_wrong_payload_shape(self):
        with pytest.raises(ParameterError):
            TransformRequest(rid=0, N=64, x=np.zeros(32, dtype=complex))

    def test_latency(self):
        r = TransformRequest(rid=7, N=64, arrival=1.0)
        c = CompletedRequest(request=r, batch_id=0, batch_size=2,
                             release=1.5, finish=2.25)
        assert c.latency == pytest.approx(1.25)


class TestSyntheticWorkload:
    def test_deterministic_per_seed(self):
        a = synthetic_workload(32, rate=1000.0, seed=3)
        b = synthetic_workload(32, rate=1000.0, seed=3)
        assert a == b
        c = synthetic_workload(32, rate=1000.0, seed=4)
        assert a != c

    def test_arrivals_increase(self):
        reqs = synthetic_workload(64, rate=500.0, seed=0)
        arr = [r.arrival for r in reqs]
        assert arr == sorted(arr) and arr[0] > 0.0

    def test_size_mix_respected(self):
        reqs = synthetic_workload(100, rate=1.0, sizes={256: 1.0, 512: 1.0},
                                  seed=1)
        assert {r.N for r in reqs} <= {256, 512}

    def test_interactive_fraction_extremes(self):
        all_batch = synthetic_workload(20, rate=1.0, interactive_fraction=0.0)
        assert all(r.deadline == "batch" for r in all_batch)
        all_inter = synthetic_workload(20, rate=1.0, interactive_fraction=1.0)
        assert all(r.deadline == "interactive" for r in all_inter)

    def test_payloads_attached_on_request(self):
        reqs = synthetic_workload(4, rate=1.0, sizes={256: 1.0},
                                  with_payloads=True)
        assert all(r.x is not None and r.x.shape == (256,) for r in reqs)
        assert all(synthetic_workload(4, rate=1.0).__getitem__(i).x is None
                   for i in range(4))

    def test_mean_rate_roughly_matches(self):
        reqs = synthetic_workload(2000, rate=100.0, seed=5)
        span = reqs[-1].arrival - reqs[0].arrival
        assert 2000 / span == pytest.approx(100.0, rel=0.15)

    @pytest.mark.parametrize("kwargs", [
        dict(num_requests=0, rate=1.0),
        dict(num_requests=4, rate=0.0),
        dict(num_requests=4, rate=1.0, interactive_fraction=1.5),
        dict(num_requests=4, rate=1.0, sizes={100: 1.0}),
        dict(num_requests=4, rate=1.0, sizes={256: -1.0}),
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            synthetic_workload(**kwargs)
