"""The static plan verifier: healthy matrix, seeded mutations, caching.

The checker is only trustworthy if it (a) certifies every plan the
builders produce on every topology class with zero findings, and
(b) provably catches planted defects with the right category.  Both
halves live here.
"""

from dataclasses import replace

import pytest

from repro.analysis.plancheck import (
    DEFAULT_G_LIST,
    PlanCertificate,
    PlanCheckError,
    _cross_check_model,
    _VERDICTS,
    certify_plan,
    check_bulk,
    check_plan,
    clear_verdicts,
    verify_matrix,
)
from repro.comm.plans import CommPlan, build_plan
from repro.faults.injector import FaultInjector, LinkDegrade, LinkFlap
from repro.machine import topology as topo
from repro.machine.multinode import multinode_p100, routed_multinode_p100
from repro.machine.spec import (
    NVLINK_P100_LINK,
    P100,
    ClusterSpec,
    dgx1_p100,
    spec_fingerprint,
)
from repro.util.validation import ParameterError

PAYLOAD = float(1 << 20)


def flat(G):
    return ClusterSpec(device=P100, num_devices=G,
                       graph=topo.fully_connected(G, NVLINK_P100_LINK),
                       name=f"{G}xP100 flat")


def plan_for(spec, kind, algorithm, payload=PAYLOAD):
    return build_plan(spec, kind, payload, algorithm,
                      reads=("x",), certify=False)


def mutate(plan, rounds):
    return CommPlan(algorithm=plan.algorithm, kind=plan.kind,
                    rounds=tuple(rounds), chained=plan.chained)


def rules_of(cert):
    return sorted({f.rule for f in cert.findings})


def categories_of(cert):
    return sorted({f.category for f in cert.findings})


# ---------------------------------------------------------------------------
# healthy plans certify with zero findings
# ---------------------------------------------------------------------------

FLAT_SPECS = [flat(G) for G in (2, 3, 4, 5, 8, 16)]
MULTI_SPECS = [multinode_p100(2, gpus_per_node=2),
               multinode_p100(2, gpus_per_node=4),
               multinode_p100(3, gpus_per_node=2),
               dgx1_p100()]
#: routed fat-tree machines: radix 4 -> 2 nodes/leaf, so the 5-node row
#: crosses the spine; uneven gpus_per_node is covered by MULTI_SPECS[2]
ROUTED_SPECS = [routed_multinode_p100(2, gpus_per_node=4, radix=4),
                routed_multinode_p100(5, gpus_per_node=2, radix=4,
                                      oversubscription=2.0)]


@pytest.mark.parametrize("kind", ["alltoall", "allgather"])
@pytest.mark.parametrize("algorithm", ["direct", "ring", "bruck"])
@pytest.mark.parametrize("spec", FLAT_SPECS + MULTI_SPECS,
                         ids=lambda s: s.name)
def test_healthy_plans_certify(spec, kind, algorithm):
    cert = check_plan(spec, plan_for(spec, kind, algorithm), PAYLOAD)
    assert cert.ok, cert.render()


@pytest.mark.parametrize("kind", ["alltoall", "allgather"])
@pytest.mark.parametrize("spec", MULTI_SPECS[:3], ids=lambda s: s.name)
def test_healthy_hier_plans_certify(spec, kind):
    cert = check_plan(spec, plan_for(spec, kind, "hier"), PAYLOAD)
    assert cert.ok, cert.render()


@pytest.mark.parametrize("kind", ["alltoall", "allgather"])
@pytest.mark.parametrize("spec", MULTI_SPECS[:3] + ROUTED_SPECS,
                         ids=lambda s: s.name)
def test_healthy_hier2_plans_certify(spec, kind):
    cert = check_plan(spec, plan_for(spec, kind, "hier2"), PAYLOAD)
    assert cert.ok, cert.render()


@pytest.mark.parametrize("kind", ["alltoall", "allgather"])
@pytest.mark.parametrize("algorithm", ["direct", "ring", "bruck"])
@pytest.mark.parametrize("spec", ROUTED_SPECS, ids=lambda s: s.name)
def test_healthy_plans_certify_on_routed_fabrics(spec, kind, algorithm):
    cert = check_plan(spec, plan_for(spec, kind, algorithm), PAYLOAD)
    assert cert.ok, cert.render()


def test_degraded_topology_plans_certify():
    base = multinode_p100(2, gpus_per_node=4)
    inj = FaultInjector(base, scheduled=(
        LinkFlap(0, 1, start=1e-3, end=3e-3),
        LinkDegrade(4, 5, start=1e-3, end=3e-3, bandwidth_scale=0.25),
    ))
    spec = inj.degraded_spec(2e-3)
    assert spec_fingerprint(spec) != spec_fingerprint(base)
    for kind in ("alltoall", "allgather"):
        for algorithm in ("direct", "ring", "bruck", "hier"):
            cert = check_plan(spec, plan_for(spec, kind, algorithm), PAYLOAD)
            assert cert.ok, cert.render()


def test_bulk_certificate_trivially_ok():
    cert = check_bulk(flat(4), "alltoall", PAYLOAD)
    assert cert.ok
    assert cert.algorithm == "bulk"
    assert cert.num_messages == 0


def test_prealloc_contract():
    spec = flat(4)
    a2a = check_plan(spec, plan_for(spec, "alltoall", "ring"), PAYLOAD)
    # every device ends holding exactly its received payload
    assert a2a.prealloc["per_device_final_bytes"] == [PAYLOAD] * 4
    assert a2a.prealloc["peak_live_bytes"] >= PAYLOAD
    ag = check_plan(spec, plan_for(spec, "allgather", "bruck"), PAYLOAD)
    assert ag.prealloc["per_device_final_bytes"] == [4 * PAYLOAD] * 4
    assert ag.prealloc["peak_live_bytes"] == 4 * PAYLOAD
    # hier staging on the leader exceeds the flat footprint
    mspec = multinode_p100(2, gpus_per_node=4)
    hier = check_plan(mspec, plan_for(mspec, "alltoall", "hier"), PAYLOAD)
    assert hier.prealloc["peak_live_bytes"] > PAYLOAD


# ---------------------------------------------------------------------------
# seeded mutations: each planted defect found, correctly categorized
# ---------------------------------------------------------------------------

class TestSeededMutations:
    spec = flat(8)

    def check(self, plan):
        return check_plan(self.spec, plan, PAYLOAD)

    def test_dropped_message_is_conservation(self):
        plan = plan_for(self.spec, "alltoall", "ring")
        rounds = list(plan.rounds)
        rounds[2] = rounds[2][1:]  # drop one forward
        cert = self.check(mutate(plan, rounds))
        assert not cert.ok
        assert "conservation-missing" in rules_of(cert)

    def test_dropped_allgather_message_is_conservation(self):
        plan = plan_for(self.spec, "allgather", "ring")
        rounds = list(plan.rounds)
        rounds[3] = rounds[3][2:]
        cert = self.check(mutate(plan, rounds))
        assert "conservation-missing" in rules_of(cert)

    def test_duplicated_block_is_conservation(self):
        plan = plan_for(self.spec, "alltoall", "direct")
        rounds = list(plan.rounds)
        rounds[1] = rounds[1] + (rounds[1][0],)  # same block sent twice
        cert = self.check(mutate(plan, rounds))
        assert "conservation-duplicate" in rules_of(cert)
        # the twin sends also compete for one receive slot
        assert "deadlock-unmatched" in rules_of(cert)

    def test_reversed_round_dependency_is_deadlock(self):
        plan = plan_for(self.spec, "alltoall", "ring")
        rounds = list(plan.rounds)
        rounds[1], rounds[2] = rounds[2], rounds[1]  # forward before receive
        cert = self.check(mutate(plan, rounds))
        assert "deadlock-cycle" in rules_of(cert)
        assert "deadlock" in categories_of(cert)

    def test_orphaned_subresource_read_is_liveness(self):
        plan = plan_for(self.spec, "alltoall", "bruck")
        rounds = list(plan.rounds)
        m = rounds[1][0]  # point one staging read at a part nobody writes
        rounds[1] = (replace(m, reads=m.reads[:-1] + ("x#via0@9",)),) \
            + rounds[1][1:]
        cert = self.check(mutate(plan, rounds))
        assert rules_of(cert) == ["liveness-undefined-read"]

    def test_corrupted_bytes_is_conservation(self):
        plan = plan_for(self.spec, "alltoall", "ring")
        rounds = list(plan.rounds)
        m = rounds[0][0]
        rounds[0] = (replace(m, nbytes=m.nbytes * 2),) + rounds[0][1:]
        cert = self.check(mutate(plan, rounds))
        assert rules_of(cert) == ["conservation-bytes"]

    def test_unconsumed_staging_store_is_dead_store(self):
        plan = plan_for(self.spec, "alltoall", "ring")
        rounds = list(plan.rounds)
        m = rounds[0][0]  # rename the staging write so nothing reads it
        rounds[0] = (replace(m, writes=tuple(
            w + "~dead" if "#via" in w else w for w in m.writes)),) \
            + rounds[0][1:]
        cert = self.check(mutate(plan, rounds))
        assert "liveness-dead-store" in rules_of(cert)

    def test_bad_routing_distance_is_deadlock(self):
        plan = plan_for(self.spec, "alltoall", "bruck")
        rounds = list(plan.rounds)
        m = rounds[0][0]  # distance 3 is not a power of two
        rounds[0] = (replace(m, dst=(m.src + 3) % 8),) + rounds[0][1:]
        cert = self.check(mutate(plan, rounds))
        assert "deadlock-routing" in rules_of(cert)

    def test_self_send_and_bad_endpoint_are_malformed(self):
        plan = plan_for(self.spec, "alltoall", "direct")
        rounds = list(plan.rounds)
        m = rounds[0][0]
        rounds[0] = (replace(m, dst=m.src), replace(m, dst=99)) \
            + rounds[0][2:]
        cert = self.check(mutate(plan, rounds))
        assert "deadlock-malformed" in rules_of(cert)

    def test_lost_device_blocks_rendezvous(self):
        plan = plan_for(self.spec, "alltoall", "ring")
        cert = check_plan(self.spec, plan, PAYLOAD, lost={3})
        assert "deadlock-lost-device" in rules_of(cert)

    def test_empty_plan_is_malformed(self):
        plan = plan_for(self.spec, "alltoall", "direct")
        cert = self.check(mutate(plan, ()))
        assert rules_of(cert) == ["deadlock-malformed"]

    def test_dropped_internode_round_is_conservation(self):
        # hier2 with a whole node-pair exchange round removed: every
        # block crossing that pair is stranded in relay staging
        mspec = multinode_p100(3, gpus_per_node=2)
        plan = plan_for(mspec, "alltoall", "hier2")
        # drop the first inter-node exchange round (writes into #x parts)
        exchange = [k for k, r in enumerate(plan.rounds)
                    if any("#x" in w for m in r for w in m.writes)]
        assert exchange, "hier2 plan must have inter-node exchange rounds"
        rounds = list(plan.rounds)
        del rounds[exchange[0]]
        cert = check_plan(mspec, mutate(plan, rounds), PAYLOAD)
        assert not cert.ok
        assert "conservation-missing" in rules_of(cert)

    def test_lost_whole_node_is_deadlock(self):
        mspec = multinode_p100(3, gpus_per_node=2)
        plan = plan_for(mspec, "alltoall", "hier2")
        cert = check_plan(mspec, plan, PAYLOAD, lost={2, 3})  # node 1
        assert not cert.ok
        assert "deadlock-lost-device" in rules_of(cert)

    def test_missized_gather_block_is_conservation(self):
        mspec = multinode_p100(2, gpus_per_node=4)
        plan = plan_for(mspec, "alltoall", "hier2")
        rounds = list(plan.rounds)
        found = False
        for k, rnd in enumerate(rounds):
            for i, m in enumerate(rnd):
                if any("#g" in w for w in m.writes):  # a phase-1 gather
                    rounds[k] = rnd[:i] + (replace(m, nbytes=m.nbytes / 2),) \
                        + rnd[i + 1:]
                    found = True
                    break
            if found:
                break
        assert found, "hier2 plan must have gather messages"
        cert = check_plan(mspec, mutate(plan, rounds), PAYLOAD)
        assert not cert.ok
        assert "conservation-bytes" in rules_of(cert)

    def test_hier2_non_relay_exchange_is_routing_violation(self):
        mspec = multinode_p100(2, gpus_per_node=4)
        plan = plan_for(mspec, "alltoall", "hier2")
        rounds = list(plan.rounds)
        found = False
        for k, rnd in enumerate(rounds):
            for i, m in enumerate(rnd):
                if any("#x" in w for w in m.writes):  # an exchange message
                    # reroute it through a device that is not the relay
                    rounds[k] = rnd[:i] + (replace(m, dst=(m.dst + 1) % 8),) \
                        + rnd[i + 1:]
                    found = True
                    break
            if found:
                break
        assert found
        cert = check_plan(mspec, mutate(plan, rounds), PAYLOAD)
        assert "deadlock-routing" in rules_of(cert)

    def test_cross_node_routing_violation(self):
        mspec = multinode_p100(2, gpus_per_node=4)
        plan = plan_for(mspec, "alltoall", "hier")
        rounds = list(plan.rounds)
        # retarget a non-leader's funnel send across nodes: illegal
        found = False
        for k, rnd in enumerate(rounds):
            for i, m in enumerate(rnd):
                if m.src == 1 and m.dst == 0:  # non-leader -> its leader
                    rounds[k] = rnd[:i] + (replace(m, dst=5),) + rnd[i + 1:]
                    found = True
                    break
            if found:
                break
        assert found
        cert = check_plan(mspec, mutate(plan, rounds), PAYLOAD)
        assert "deadlock-routing" in rules_of(cert)


# ---------------------------------------------------------------------------
# the build_plan admission gate and its verdict cache
# ---------------------------------------------------------------------------

class TestCertifyPlan:
    def test_build_plan_certifies_by_default(self):
        clear_verdicts()
        spec = flat(4)
        build_plan(spec, "alltoall", PAYLOAD, "ring", reads=("x",))
        key = (spec_fingerprint(spec), "alltoall", "ring")
        assert key in _VERDICTS
        assert _VERDICTS[key].ok

    def test_verdict_cached_per_structure(self):
        clear_verdicts()
        spec = flat(4)
        plan = plan_for(spec, "alltoall", "bruck")
        c1 = certify_plan(spec, plan, PAYLOAD)
        c2 = certify_plan(spec, plan, PAYLOAD / 2)  # payload-linear: hit
        assert c1 is c2
        assert len(_VERDICTS) == 1

    def test_mutated_plan_raises_plancheck_error(self):
        clear_verdicts()
        spec = flat(4)
        plan = plan_for(spec, "alltoall", "ring")
        bad = mutate(plan, plan.rounds[1:])
        with pytest.raises(PlanCheckError, match="conservation"):
            certify_plan(spec, bad, PAYLOAD)
        clear_verdicts()

    def test_plancheck_error_is_parameter_error(self):
        assert issubclass(PlanCheckError, ParameterError)

    def test_model_cross_check_flags_wire_drift(self):
        # hand the cross-check a certificate claiming health, with a plan
        # whose wire bytes disagree with a freshly built twin
        spec = flat(4)
        plan = plan_for(spec, "alltoall", "ring")
        short = mutate(plan, plan.rounds[:-1])
        cert = PlanCertificate(
            algorithm="ring", kind="alltoall", num_devices=4,
            payload=PAYLOAD, wire_bytes=short.wire_bytes(),
            num_messages=short.num_messages, num_rounds=len(short.rounds),
            findings=(), prealloc={}, fingerprint=spec_fingerprint(spec))
        checked = _cross_check_model(spec, short, PAYLOAD, cert)
        assert any(f.rule == "conservation-model-drift"
                   for f in checked.findings)
        healthy = _cross_check_model(
            spec, plan, PAYLOAD, replace(cert, wire_bytes=plan.wire_bytes()))
        assert healthy.ok


# ---------------------------------------------------------------------------
# the repro-verify sweep
# ---------------------------------------------------------------------------

def test_verify_matrix_small_is_clean():
    rows, findings = verify_matrix(g_list=(2, 4), payload=PAYLOAD)
    assert findings == []
    assert all(r["ok"] for r in rows)
    algos = {r["algorithm"] for r in rows}
    assert algos == {"bulk", "direct", "ring", "bruck", "hier", "hier2"}
    specs = {r["spec"] for r in rows}
    assert {"flat2", "flat4", "nodes2x2", "nodes2x4-degraded",
            "dgx1-degraded", "routed4x4-nodeloss"} <= specs
    # certificates double as the preallocation contract
    for r in rows:
        assert r["prealloc"]["peak_live_bytes"] >= 0


def test_default_g_list_matches_acceptance_matrix():
    assert DEFAULT_G_LIST == (2, 4, 8, 16, 64, 256)


def test_certificate_render_and_json():
    spec = flat(4)
    cert = check_plan(spec, plan_for(spec, "alltoall", "ring"), PAYLOAD)
    assert "certified" in cert.render()
    doc = cert.to_json()
    assert doc["ok"] is True
    assert doc["G"] == 4
    assert doc["fingerprint"] == spec_fingerprint(spec)
