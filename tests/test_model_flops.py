import math

import pytest

from repro.fmm.plan import FmmGeometry
from repro.model.flops import (
    fft_local_flops,
    fmm_flops_collected,
    fmm_stage_flops,
    fmm_total_flops,
)


def geom(M=1 << 14, P=256, ML=64, B=3, Q=16, G=2):
    return FmmGeometry.create(M=M, P=P, ML=ML, B=B, Q=Q, G=G)


class TestStageFlops:
    def test_paper_stage_formulas(self):
        """Each count against the Section 5.1 list, literally."""
        g = geom()
        C, t = 2, g.tree
        f = fmm_stage_flops(g, "complex128")
        P, Q, ML, G, L, B = g.P, g.Q, g.ML, 2, t.L, t.B
        assert f["S2M"] == pytest.approx(2 * C * ML * (1 << L) * (P - 1) * Q / G)
        assert f["L2T"] == f["S2M"]
        assert f["S2T"] == pytest.approx(6 * C * ML**2 * (1 << L) * (P - 1) / G)
        m2m_total = sum(v for k, v in f.items() if k.startswith("M2M"))
        assert m2m_total == pytest.approx(
            4 * C * ((1 << L) / G - (1 << B) / G) * (P - 1) * Q * Q
        )
        m2l_total = sum(
            v for k, v in f.items() if k.startswith("M2L-") and k != "M2L-B"
        )
        assert m2l_total == pytest.approx(
            6 * C * ((1 << (L + 1)) / G - (1 << (B + 1)) / G) * (P - 1) * Q * Q
        )
        assert f["M2L-B"] == pytest.approx(
            2 * C * (1 << B) * ((1 << B) - 3) * (P - 1) * Q * Q / G
        )
        assert f["REDUCE"] == pytest.approx(C * (1 << B) * (P - 1) * Q)

    def test_real_input_halves(self):
        g = geom()
        fc = fmm_total_flops(g, "complex128")
        fr = fmm_total_flops(g, "float64")
        assert fc == pytest.approx(2 * fr)

    def test_l_equals_b_only_base_stages(self):
        g = geom(M=512, ML=64, B=3)  # L == 3 == B
        f = fmm_stage_flops(g)
        assert not any(k.startswith("M2M") for k in f)
        assert not any(k.startswith("L2L") for k in f)
        assert set(k for k in f if k.startswith("M2L")) == {"M2L-B"}


class TestCollectedForm:
    @pytest.mark.parametrize("P,ML,B,G", [
        (256, 64, 3, 2), (256, 64, 2, 1), (1024, 32, 4, 4), (128, 128, 3, 8),
    ])
    def test_collected_matches_exact(self, P, ML, B, G):
        """For B > log2 G the collected expression is exact."""
        N = 1 << 24
        g = FmmGeometry.create(M=N // P, P=P, ML=ML, B=B, Q=16, G=G)
        exact = fmm_total_flops(g, "complex128")
        collected = fmm_flops_collected(N, P, ML, 16, G, B, "complex128")
        assert collected == pytest.approx(exact, rel=1e-12)

    def test_edelman_agreement(self):
        """Section 5.1: 'the first three terms agree precisely with
        Edelman's flop count when P = G, C = 2, and B = 2' — the
        dominant terms are C[20 Q^2/ML + 6 ML + 4Q](1 - 1/P) N/G."""
        N, P, ML, Q = 1 << 24, 4, 32, 16
        G, C, B = 4, 2, 2
        main = C * (20 * Q * Q / ML + 6 * ML + 4 * Q) * (1 - 1 / P) * N / G
        total = fmm_flops_collected(N, P, ML, Q, G, B, "complex128")
        assert total == pytest.approx(main, rel=0.05)

    def test_weak_p_dependence(self):
        """Doubling P barely changes total FMM flops (Section 5.1)."""
        N = 1 << 24
        f1 = fmm_flops_collected(N, 256, 64, 16, 2)
        f2 = fmm_flops_collected(N, 512, 64, 16, 2)
        assert abs(f2 - f1) / f1 < 0.02


class TestFftFlops:
    def test_count(self):
        assert fft_local_flops(1 << 20, 2, "complex128") == pytest.approx(
            5 * (1 << 19) * 20
        )

    def test_real_halves(self):
        assert fft_local_flops(1 << 16, 1, "float64") == pytest.approx(
            fft_local_flops(1 << 16, 1, "complex128") / 2
        )
