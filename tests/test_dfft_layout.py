import numpy as np
import pytest

from repro.dfft.layout import BlockRows
from repro.util.validation import ParameterError


class TestConstruction:
    def test_basic(self):
        lay = BlockRows(rows=8, cols=4, G=2)
        assert lay.rows_local == 4
        assert lay.cols_local == 2
        assert lay.n == 32

    def test_rejects_indivisible_rows(self):
        with pytest.raises(ParameterError):
            BlockRows(rows=9, cols=4, G=2)

    def test_rejects_indivisible_cols(self):
        with pytest.raises(ParameterError):
            BlockRows(rows=8, cols=5, G=2)

    def test_g1_always_ok(self):
        BlockRows(rows=7, cols=3, G=1)


class TestRanges:
    def test_row_range(self):
        lay = BlockRows(rows=8, cols=4, G=2)
        assert lay.row_range(0) == (0, 4)
        assert lay.row_range(1) == (4, 8)

    def test_row_range_bounds(self):
        lay = BlockRows(rows=8, cols=4, G=2)
        with pytest.raises(ParameterError):
            lay.row_range(2)

    def test_local_shape_and_bytes(self):
        lay = BlockRows(rows=8, cols=4, G=2)
        assert lay.local_shape() == (4, 4)
        assert lay.local_bytes(16) == 4 * 4 * 16

    def test_transposed(self):
        lay = BlockRows(rows=8, cols=4, G=2).transposed()
        assert (lay.rows, lay.cols) == (4, 8)

    def test_alltoall_bytes(self):
        lay = BlockRows(rows=8, cols=4, G=2)
        assert lay.alltoall_bytes_sent(16) == pytest.approx(lay.local_bytes(16) / 2)
        assert BlockRows(rows=8, cols=4, G=1).alltoall_bytes_sent(16) == 0.0


class TestScatterGather:
    def test_roundtrip(self, rng):
        lay = BlockRows(rows=6, cols=6, G=3)
        a = rng.standard_normal((6, 6))
        blocks = lay.scatter(a)
        assert len(blocks) == 3
        np.testing.assert_array_equal(lay.gather(blocks), a)

    def test_scatter_from_flat(self, rng):
        lay = BlockRows(rows=4, cols=4, G=2)
        x = rng.standard_normal(16)
        blocks = lay.scatter(x)
        np.testing.assert_array_equal(blocks[0], x.reshape(4, 4)[:2])

    def test_gather_wrong_count(self):
        lay = BlockRows(rows=4, cols=4, G=2)
        with pytest.raises(ParameterError):
            lay.gather([np.zeros((2, 4))])
