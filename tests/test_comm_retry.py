"""Comm-layer retry: policy, !fail records, budgets, backoff, hazards."""

from __future__ import annotations

import pytest

from repro import comm
from repro.comm import CommFailure, RetryPolicy
from repro.faults import DeviceLoss, FaultInjector, LinkFlap
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.util.validation import ParameterError


def spec4():
    return p100_nvlink_node(4)


def flaky_cluster(spec=None, rate=0.0, scheduled=(), seed=0, retry=None):
    spec = spec if spec is not None else spec4()
    inj = FaultInjector(spec, seed=seed, transient_rate=rate,
                        scheduled=scheduled)
    return VirtualCluster(spec, execute=False, faults=inj, retry=retry)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ParameterError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ParameterError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ParameterError):
            RetryPolicy(budget=0)

    def test_delay_grows_exponentially_and_caps(self):
        p = RetryPolicy(backoff=1e-4, backoff_factor=2.0, max_backoff=4e-4,
                        jitter=0.0)
        assert p.delay("x", 0) == pytest.approx(1e-4)
        assert p.delay("x", 1) == pytest.approx(2e-4)
        assert p.delay("x", 2) == pytest.approx(4e-4)
        assert p.delay("x", 5) == pytest.approx(4e-4)   # capped

    def test_jitter_is_stateless_and_deterministic(self):
        p = RetryPolicy(jitter=0.5)
        assert p.delay("a2a", 1) == p.delay("a2a", 1)
        assert p.delay("a2a", 1) != p.delay("a2a", 2)
        base = RetryPolicy(jitter=0.0)
        assert base.delay("a2a", 1) <= p.delay("a2a", 1) <= 1.5 * base.delay("a2a", 1)


class TestFailRecords:
    def test_flapped_message_issues_fail_then_succeeds(self):
        # flap window covers only t=0; the retry after the timeout lands
        # outside it and succeeds
        pol = RetryPolicy(timeout=1e-3, backoff=1e-3, jitter=0.0)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e-3),), retry=pol)
        comm.sendrecv(cl, 0, 1, 1024, "p2p", reads=["x"], writes=["y"])
        names = [r.name for r in cl.ledger]
        assert names == ["p2p!fail", "p2p"]
        fail = list(cl.ledger)[0]
        assert fail.duration == pytest.approx(pol.timeout)
        assert fail.comm_bytes == 0.0
        # fail writes land in a sibling buffer, not the real destination
        assert any(buf.endswith("y.fail0") for _, buf in fail.writes)

    def test_success_follows_backoff(self):
        pol = RetryPolicy(timeout=1e-3, backoff=2e-3, jitter=0.0)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e-3),), retry=pol)
        comm.sendrecv(cl, 0, 1, 1024, "p2p", reads=["x"], writes=["y"])
        fail, ok = list(cl.ledger)
        assert ok.start >= fail.start + pol.timeout + pol.backoff

    def test_budget_exhaustion_raises_retryable(self):
        # flap covers the whole horizon: every attempt fails
        pol = RetryPolicy(timeout=1e-4, backoff=1e-5, jitter=0.0, budget=3)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e3),), retry=pol)
        with pytest.raises(CommFailure) as ei:
            comm.sendrecv(cl, 0, 1, 1024, "p2p", reads=["x"], writes=["y"])
        assert not ei.value.permanent
        assert ei.value.time > 0.0
        # exactly budget failed attempts were charged to the ledger
        assert sum(r.name == "p2p!fail" for r in cl.ledger) == pol.budget + 1

    def test_device_loss_is_permanent_and_immediate(self):
        cl = flaky_cluster(scheduled=(DeviceLoss(1, 0.0),))
        with pytest.raises(CommFailure) as ei:
            comm.sendrecv(cl, 0, 1, 1024, "p2p", reads=["x"], writes=["y"])
        assert ei.value.permanent
        assert len(cl.ledger) == 0     # no attempt was charged

    def test_bulk_collective_fail_records_are_coherent(self):
        pol = RetryPolicy(timeout=1e-3, backoff=1e-3, jitter=0.0)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e-3),), retry=pol)
        comm.alltoall(cl, 4096, "a2a", reads=["x"], writes=["y"])
        fails = [r for r in cl.ledger if r.name == "a2a!fail"]
        assert len(fails) == cl.G      # one per device, same window
        assert len({(r.start, r.duration) for r in fails}) == 1
        assert all(r.peer < 0 for r in fails)

    def test_budget_shared_across_plan_messages(self):
        # direct-plan alltoall on a permanently flapped link: the link's
        # messages burn the shared per-call budget and raise
        pol = RetryPolicy(timeout=1e-4, backoff=1e-5, jitter=0.0, budget=2)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e3),), retry=pol)
        with pytest.raises(CommFailure):
            comm.alltoall(cl, 4096, "a2a", reads=["x"], writes=["y"],
                          algorithm="direct")

    def test_fail_names_do_not_pollute_the_comm_log(self):
        pol = RetryPolicy(timeout=1e-3, backoff=1e-3, jitter=0.0)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e-3),), retry=pol)
        comm.sendrecv(cl, 0, 1, 1024, "p2p", reads=["x"], writes=["y"])
        assert [e["name"] for e in cl.comm_log] == ["p2p"]


class TestRetriedSchedulesSanitize:
    def test_retried_p2p_sanitizes(self):
        pol = RetryPolicy(timeout=1e-3, backoff=1e-3, jitter=0.0)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e-3),), retry=pol)
        ev = comm.sendrecv(cl, 0, 1, 1024, "p2p", reads=["x"], writes=["y"])
        cl.launch(1, "use", "gemm", 1e6, 1e4, float, after=[ev],
                  reads=["y"], writes=["z"])
        cl.sanitize()

    def test_retried_transient_alltoall_sanitizes(self):
        cl = flaky_cluster(rate=0.05, seed=0)
        for i in range(4):
            evs = comm.alltoall(cl, 4096, f"a2a{i}", reads=["x"],
                                writes=[f"y{i}"], algorithm="direct")
            cl.launch(0, "use", "gemm", 1e6, 1e4, float, after=[evs[0]],
                      reads=[f"y{i}"], writes=[f"z{i}"])
        assert any("!fail" in r.name for r in cl.ledger)
        cl.sanitize()

    def test_retried_halo_exchange_sanitizes(self):
        pol = RetryPolicy(timeout=1e-3, backoff=1e-3, jitter=0.0)
        cl = flaky_cluster(scheduled=(LinkFlap(0, 1, 0.0, 1e-3),), retry=pol)
        comm.halo_exchange(cl, 1024, "halo", "src", "halo")
        assert any(r.name == "halo!fail" for r in cl.ledger)
        cl.sanitize()


class TestZeroFaultTwin:
    def test_no_injector_path_untouched(self):
        def run(cl):
            comm.sendrecv(cl, 0, 1, 1024, "p2p", reads=["x"], writes=["y"])
            comm.alltoall(cl, 4096, "a2a", reads=["y"], writes=["z"],
                          algorithm="direct")
            comm.halo_exchange(cl, 512, "halo", "z", "h")

        plain = VirtualCluster(spec4(), execute=False)
        run(plain)
        twin = flaky_cluster()      # injector with nothing to inject
        run(twin)
        assert plain.ledger.fingerprint() == twin.ledger.fingerprint()

    def test_replay_after_reset_time_is_bit_identical(self):
        def run(cl):
            for i in range(4):
                comm.alltoall(cl, 4096, f"a2a{i}", reads=["x"], writes=["y"],
                              algorithm="direct")

        cl = flaky_cluster(rate=0.05, seed=0)
        run(cl)
        fp = cl.ledger.fingerprint()
        assert any("!fail" in r.name for r in cl.ledger)
        cl.reset_time()
        run(cl)
        assert cl.ledger.fingerprint() == fp
