import numpy as np
import pytest

from repro.dfft.fft2d import Distributed2DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node
from repro.util.validation import ParameterError


def _rand2(m, p, rng):
    return rng.standard_normal((m, p)) + 1j * rng.standard_normal((m, p))


class TestCorrectness:
    @pytest.mark.parametrize("G", [1, 2, 4])
    def test_matches_fft2(self, G, rng):
        M, P = 64, 32
        cl = VirtualCluster(p100_nvlink_node(G))
        a = _rand2(M, P, rng)
        out = Distributed2DFFT(M, P, cl).run(a)
        # output is B[p, m]; numpy's fft2 gives [m', p']
        np.testing.assert_allclose(out.T, np.fft.fft2(a), atol=1e-9)

    def test_rectangular(self, rng):
        cl = VirtualCluster(p100_nvlink_node(2))
        a = _rand2(256, 8, rng)
        out = Distributed2DFFT(256, 8, cl).run(a)
        np.testing.assert_allclose(out.T, np.fft.fft2(a), atol=1e-8)

    def test_load_callback_fused(self, rng):
        M, P = 32, 16
        cl = VirtualCluster(p100_nvlink_node(2))
        a = _rand2(M, P, rng)
        out = Distributed2DFFT(M, P, cl).run(a, load_callback=lambda blk, g: 2.0 * blk)
        np.testing.assert_allclose(out.T, np.fft.fft2(2.0 * a), atol=1e-9)

    def test_load_callback_unfused_same_result(self, rng):
        M, P = 32, 16
        a = _rand2(M, P, rng)
        cb = lambda blk, g: blk + 1.0
        cl1 = VirtualCluster(p100_nvlink_node(2))
        out1 = Distributed2DFFT(M, P, cl1, fuse_load=True).run(a, load_callback=cb)
        cl2 = VirtualCluster(p100_nvlink_node(2))
        out2 = Distributed2DFFT(M, P, cl2, fuse_load=False).run(a, load_callback=cb)
        np.testing.assert_allclose(out1, out2, atol=1e-10)

    def test_staged_input(self, rng):
        M, P, G = 16, 16, 2
        cl = VirtualCluster(p100_nvlink_node(G))
        a = _rand2(M, P, rng)
        for g in range(G):
            cl.dev(g)["mykey"] = a[g * M // G : (g + 1) * M // G].copy()
        out = Distributed2DFFT(M, P, cl).run(key="mykey", staged=True)
        np.testing.assert_allclose(out.T, np.fft.fft2(a), atol=1e-10)


class TestValidation:
    def test_rejects_indivisible(self):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        with pytest.raises(Exception):
            Distributed2DFFT(6, 8, cl)

    def test_rejects_real_dtype(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(ParameterError):
            Distributed2DFFT(8, 8, cl, dtype="float32")

    def test_execute_requires_data(self):
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            Distributed2DFFT(8, 8, cl).run()


class TestTiming:
    def test_single_alltoall(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed2DFFT(1 << 14, 1 << 8, cl).run()
        comm_names = set(cl.ledger.comm_bytes_by_name())
        assert comm_names == {"fft2d.transpose"}

    def test_faster_than_1d(self):
        """The Section 6.1 'nearly 3x' budget claim, directionally."""
        from repro.dfft.fft1d import Distributed1DFFT

        N = 1 << 26
        cl1 = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(N, cl1).run()
        cl2 = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed2DFFT(N // 256, 256, cl2).run()
        ratio = cl1.wall_time() / cl2.wall_time()
        assert 1.8 < ratio < 3.5

    def test_extreme_aspect_slower(self):
        """Figure 7: large aspect ratios degrade the 2D FFT."""
        N = 1 << 24
        cl_sq = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed2DFFT(1 << 12, 1 << 12, cl_sq).run()
        cl_skew = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed2DFFT(N // 4, 4, cl_skew).run()
        assert cl_skew.wall_time() > 1.5 * cl_sq.wall_time()

    def test_fused_callback_cheaper_than_unfused(self):
        M, P = 1 << 14, 1 << 10
        cb = lambda blk, g: blk
        cl_f = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed2DFFT(M, P, cl_f, fuse_load=True).run(load_callback=cb)
        cl_u = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed2DFFT(M, P, cl_u, fuse_load=False).run(load_callback=cb)
        assert cl_f.wall_time() < cl_u.wall_time()
