import numpy as np
import pytest

from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node
from repro.machine.stream import Event, Stream
from repro.util.validation import ParameterError


class TestStreamsAndEvents:
    def test_stream_in_order(self):
        s = Stream(0, "compute")
        s.advance_to(1.0)
        with pytest.raises(ValueError):
            s.advance_to(0.5)

    def test_ready_after_takes_max(self):
        s = Stream(0, "c")
        s.advance_to(2.0)
        assert s.ready_after(Event(1.0), Event(3.0)) == pytest.approx(3.0)

    def test_none_events_rejected(self):
        # None used to be silently skipped, which let absent dependencies
        # masquerade as satisfied ones; call sites must filter instead.
        s = Stream(0, "c")
        with pytest.raises(ValueError, match="None event"):
            s.ready_after(None, Event(1.0))

    def test_zero_events_is_stream_clock(self):
        s = Stream(0, "c")
        s.advance_to(2.5)
        assert s.ready_after() == pytest.approx(2.5)

    def test_wait_count_increments(self):
        s = Stream(0, "c")
        ev = Event(1.0)
        assert ev.wait_count == 0
        s.ready_after(ev)
        s.ready_after(ev)
        assert ev.wait_count == 2

    def test_event_zero(self):
        assert Event.zero().time == 0.0


class TestLaunch:
    def test_duration_includes_latency(self, cluster2):
        ev = cluster2.launch(0, "k", "gemm", 0.0, 0.0, np.float64)
        assert ev.time == pytest.approx(cluster2.spec.device.launch_latency)

    def test_stream_serializes(self, cluster2):
        e1 = cluster2.launch(0, "a", "gemm", 1e9, 1e6, np.float64)
        e2 = cluster2.launch(0, "b", "gemm", 1e9, 1e6, np.float64)
        assert e2.time > e1.time

    def test_devices_independent(self, cluster2):
        e1 = cluster2.launch(0, "a", "gemm", 1e9, 1e6, np.float64)
        e2 = cluster2.launch(1, "a", "gemm", 1e9, 1e6, np.float64)
        assert e1.time == pytest.approx(e2.time)

    def test_after_dependency(self, cluster2):
        e1 = cluster2.launch(0, "a", "gemm", 1e9, 1e6, np.float64)
        e2 = cluster2.launch(1, "b", "gemm", 1e9, 1e6, np.float64, after=[e1])
        assert e2.time >= e1.time + 1e-9

    def test_fn_runs_in_execute_mode(self, cluster2):
        hit = []
        cluster2.launch(0, "a", "gemm", 1.0, 1.0, np.float64, fn=lambda c: hit.append(1))
        assert hit == [1]

    def test_fn_skipped_in_timing_mode(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        hit = []
        cl.launch(0, "a", "gemm", 1.0, 1.0, np.float64, fn=lambda c: hit.append(1))
        assert hit == []

    def test_ledger_records(self, cluster2):
        cluster2.launch(0, "a", "gemm", 5.0, 7.0, np.float64)
        recs = cluster2.ledger.records(name="a")
        assert len(recs) == 1
        assert recs[0].flops == 5.0
        assert recs[0].mops == 7.0


class TestSendRecv:
    def test_time_matches_link(self, cluster2):
        nbytes = 36e9  # one second at link speed
        ev = cluster2.sendrecv(0, 1, nbytes, "msg")
        assert ev.time == pytest.approx(1.0 + cluster2.spec.comm_latency())

    def test_occupies_both_endpoints(self, cluster2):
        cluster2.sendrecv(0, 1, 36e9, "msg")
        assert cluster2.dev(0).stream("comm.tx").clock > 0.9
        assert cluster2.dev(1).stream("comm.rx").clock > 0.9

    def test_full_duplex_ring_shift_parallel(self, cluster4):
        # right-shift ring: all transfers concurrent
        evs = [cluster4.sendrecv(g, (g + 1) % 4, 36e9, "ring") for g in range(4)]
        times = {e.time for e in evs}
        assert len(times) == 1  # all finish together

    def test_self_send_free(self, cluster2):
        ev = cluster2.sendrecv(0, 0, 1e9, "self")
        assert ev.time == pytest.approx(0.0)

    def test_g1_free_but_fn_runs(self):
        cl = VirtualCluster(p100_nvlink_node(1))
        hit = []
        cl.sendrecv(0, 0, 1e9, "x", fn=lambda c: hit.append(1))
        assert hit == [1]
        assert cl.wall_time() == 0.0


class TestCollectives:
    def test_alltoall_time(self, cluster2):
        bw = cluster2.spec.alltoall_bandwidth()
        evs = cluster2.alltoall(bw, "a2a")  # one second of data
        expected = 1.0 + cluster2.spec.comm_latency() + cluster2.spec.collective_overhead
        assert evs[0].time == pytest.approx(expected)

    def test_alltoall_synchronizes(self, cluster2):
        cluster2.launch(0, "work", "gemm", 1e10, 1e6, np.float64)
        e0 = cluster2.dev(0).stream("compute").clock
        evs = cluster2.alltoall(1e3, "a2a", after=[Event(e0)])
        assert all(e.time == evs[0].time for e in evs)
        assert evs[0].time > e0

    def test_allgather_receive_dominated(self, cluster4):
        evs2 = VirtualCluster(p100_nvlink_node(2)).allgather(1e9, "ag")
        evs4 = cluster4.allgather(1e9, "ag")
        assert evs4[0].time != evs2[0].time  # (G-1) scaling differs

    def test_g1_collective_free(self):
        cl = VirtualCluster(p100_nvlink_node(1))
        evs = cl.alltoall(1e9, "x")
        assert evs[0].time == 0.0


class TestMemoryAndBarrier:
    def test_scatter_gather_roundtrip(self, cluster2, rng):
        x = rng.standard_normal(64)
        cluster2.scatter_blocks("x", x)
        np.testing.assert_array_equal(cluster2.gather_blocks("x"), x)

    def test_scatter_rejects_indivisible(self, cluster2):
        with pytest.raises(ParameterError):
            cluster2.scatter_blocks("x", np.zeros(63))

    def test_device_memory_dict(self, cluster2):
        cluster2.dev(0)["buf"] = np.ones(4)
        assert "buf" in cluster2.dev(0)
        assert cluster2.dev(0).nbytes("buf") == 32

    def test_timing_mode_memory_raises(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        cl.dev(0).alloc("buf", (4,), np.float64)
        assert cl.dev(0).nbytes("buf") == 32
        with pytest.raises(RuntimeError):
            cl.dev(0)["buf"]

    def test_barrier_aligns_clocks(self, cluster2):
        cluster2.launch(0, "a", "gemm", 1e10, 1e6, np.float64)
        cluster2.barrier()
        t = cluster2.wall_time()
        for d in cluster2.devices:
            for s in d.streams.values():
                assert s.clock == pytest.approx(t)

    def test_reset_time(self, cluster2):
        cluster2.launch(0, "a", "gemm", 1e9, 1e6, np.float64)
        cluster2.dev(0)["keepme"] = np.ones(2)
        cluster2.reset_time()
        assert cluster2.wall_time() == 0.0
        assert len(cluster2.ledger) == 0
        assert "keepme" in cluster2.dev(0)

    def test_host_op_free(self, cluster2):
        ev = cluster2.host_op(0, "setup")
        assert ev.time == pytest.approx(0.0)
