"""Multi-window burn-rate SLO tracking over served completions.

The contract under test: an alert trips only when *both* the short and
the long window burn past the threshold (a short-window blip alone is
rejected), clears as soon as the short window recovers, and every
transition is mirrored into the telemetry registry at simulated time.
"""

from __future__ import annotations

import pytest

from repro.obs.slo import SloAlert, SloObjective, SloTracker
from repro.obs.telemetry import MetricsRegistry
from repro.util.validation import ParameterError

# default objective: availability 0.9 -> budget 0.1, threshold 2.0,
# so a window needs miss fraction >= 0.2 to burn at alert pace
OBJ = SloObjective()


def make_tracker(**objectives):
    reg = MetricsRegistry()
    return SloTracker(reg, objectives or None), reg


class TestObjectiveValidation:
    def test_defaults_are_valid(self):
        assert OBJ.availability == 0.9
        assert OBJ.short_window <= OBJ.long_window

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_availability_bounds(self, bad):
        with pytest.raises(ParameterError):
            SloObjective(availability=bad)

    def test_window_ordering(self):
        with pytest.raises(ParameterError):
            SloObjective(short_window=2e-3, long_window=1e-3)
        with pytest.raises(ParameterError):
            SloObjective(short_window=0.0)

    def test_burn_threshold_positive(self):
        with pytest.raises(ParameterError):
            SloObjective(burn_threshold=0.0)


class TestTriggerAndClear:
    def test_sustained_misses_trigger_then_successes_clear(self):
        tr, reg = make_tracker()
        # misses spread across the long window: both burns saturate
        t = 0.0
        for i in range(10):
            t = i * OBJ.long_window / 10
            tr.record("interactive", t, ok=False)
        assert tr.active("interactive")
        kinds = [a.kind for a in tr.alerts]
        assert kinds == ["trigger"]
        assert tr.alerts[0].deadline_class == "interactive"
        assert tr.alerts[0].short_burn >= OBJ.burn_threshold
        assert tr.alerts[0].long_burn >= OBJ.burn_threshold
        # successes flush the short window below threshold -> clear
        for i in range(40):
            t += OBJ.short_window / 8
            tr.record("interactive", t, ok=True)
        assert not tr.active("interactive")
        assert [a.kind for a in tr.alerts] == ["trigger", "clear"]
        assert tr.alerts[1].short_burn < OBJ.burn_threshold

    def test_alert_emits_registry_counters_and_gauges(self):
        tr, reg = make_tracker()
        for i in range(10):
            tr.record("batch", i * OBJ.long_window / 10, ok=False)
        trig = reg.counter("slo.alerts", {"class": "batch", "kind": "trigger"})
        assert trig.value == 1.0
        short = reg.gauge("slo.burn_rate", {"class": "batch", "window": "short"})
        long_ = reg.gauge("slo.burn_rate", {"class": "batch", "window": "long"})
        assert short.value >= OBJ.burn_threshold
        assert long_.value >= OBJ.burn_threshold
        # gauges are stamped at the completion's simulated time
        assert short.samples[-1][0] == pytest.approx(9 * OBJ.long_window / 10)

    def test_no_retrigger_while_active(self):
        tr, _ = make_tracker()
        for i in range(30):
            tr.record("interactive", i * OBJ.long_window / 10, ok=False)
        # stays firing the whole time: exactly one trigger, no clear
        assert [a.kind for a in tr.alerts] == ["trigger"]

    def test_classes_are_independent(self):
        tr, _ = make_tracker()
        for i in range(10):
            t = i * OBJ.long_window / 10
            tr.record("interactive", t, ok=False)
            tr.record("batch", t, ok=True)
        assert tr.active("interactive")
        assert not tr.active("batch")
        assert {a.deadline_class for a in tr.alerts} == {"interactive"}


class TestMultiWindowRejectsBlips:
    def test_short_window_blip_alone_does_not_trigger(self):
        tr, _ = make_tracker()
        # a long healthy history, then a burst of misses confined to
        # the short window: short burn saturates but the long window
        # still averages below threshold -> no alert
        t = 0.0
        for i in range(96):
            t = i * OBJ.long_window / 100
            tr.record("interactive", t, ok=True)
        for _ in range(4):
            t += OBJ.short_window / 10
            tr.record("interactive", t, ok=False)
        short = tr._burn("interactive", t, OBJ.short_window)
        long_ = tr._burn("interactive", t, OBJ.long_window)
        assert short >= OBJ.burn_threshold  # the blip is real
        assert long_ < OBJ.burn_threshold  # but not sustained
        assert not tr.active("interactive")
        assert tr.alerts == []

    def test_burn_rate_math(self):
        tr, _ = make_tracker()
        # 2 misses out of 10 in-window events: miss fraction 0.2,
        # budget 0.1 -> burn 2.0 exactly
        for i in range(8):
            tr.record("batch", i * 1e-4, ok=True)
        for i in range(2):
            tr.record("batch", 8e-4 + i * 1e-4, ok=False)
        burn = tr._burn("batch", 9e-4, OBJ.short_window)
        assert burn == pytest.approx(2.0)

    def test_empty_window_burns_zero(self):
        tr, _ = make_tracker()
        assert tr._burn("interactive", 1.0, OBJ.short_window) == 0.0


class TestSerialization:
    def test_to_json_shape(self):
        tight = SloObjective(availability=0.99)
        tr, _ = make_tracker(interactive=tight)
        for i in range(10):
            tr.record("interactive", i * OBJ.long_window / 10, ok=False)
        doc = tr.to_json()
        assert set(doc) == {"objectives", "alerts"}
        assert doc["objectives"]["interactive"]["availability"] == 0.99
        assert doc["objectives"]["batch"]["availability"] == OBJ.availability
        a = doc["alerts"][0]
        assert a["kind"] == "trigger"
        assert a["deadline_class"] == "interactive"
        assert a["time"] >= 0.0

    def test_alert_dataclass_fields(self):
        a = SloAlert(1.0, "batch", "trigger", 3.0, 2.5)
        assert (a.time, a.kind) == (1.0, "trigger")
