"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import FmmFftPlan
from repro.fmm.plan import FmmOperators
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_plan():
    """A small but non-trivial FMM-FFT plan (N = 4096)."""
    return FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16)


@pytest.fixture
def small_ops():
    """Operators for a small FMM batch."""
    return FmmOperators.create(M=256, P=8, ML=16, B=2, Q=16)


def make_cluster(G: int = 2, execute: bool = True) -> VirtualCluster:
    return VirtualCluster(p100_nvlink_node(G), execute=execute)


@pytest.fixture
def cluster2():
    return make_cluster(2)


@pytest.fixture
def cluster4():
    return make_cluster(4)
