import numpy as np
import pytest

from repro.fmm import operators as ops
from repro.fmm.chebyshev import cheb_points
from repro.fmm.plan import FmmGeometry, FmmOperators
from repro.util.validation import ParameterError


class TestS2M:
    def test_shape(self):
        assert ops.s2m_matrix(8, 16).shape == (8, 16)

    def test_columns_sum_to_one(self):
        """Sum preservation — the REDUCE trick (Section 4.8)."""
        S2M = ops.s2m_matrix(12, 32)
        np.testing.assert_allclose(S2M.sum(axis=0), np.ones(32), atol=1e-10)

    def test_l2t_is_transpose(self):
        np.testing.assert_array_equal(ops.l2t_matrix(8, 16), ops.s2m_matrix(8, 16).T)

    def test_source_map(self):
        """s_m = -1 + (2m+1)/M_L lands strictly inside [-1, 1]."""
        S2M = ops.s2m_matrix(4, 4)
        # with Q = ML and sources at non-node points, matrix is dense
        assert np.abs(S2M).min() > 0


class TestM2M:
    def test_shape(self):
        assert ops.m2m_matrix(8).shape == (8, 16)

    def test_columns_sum_to_one(self):
        M2M = ops.m2m_matrix(10)
        np.testing.assert_allclose(M2M.sum(axis=0), np.ones(20), atol=1e-10)

    def test_l2l_is_transpose(self):
        np.testing.assert_array_equal(ops.l2l_matrix(6), ops.m2m_matrix(6).T)

    def test_l2l_reproduces_polynomials(self):
        """M2M is anterpolation; its transpose L2L interpolates a parent
        expansion at the children's nodes exactly for degree < Q."""
        Q = 8
        zq = cheb_points(Q)
        f = lambda z: 1.0 + z + 0.5 * z**2 + z**5
        children = ops.l2l_matrix(Q) @ f(zq)  # (2Q,): left child then right
        # child node z_k in child coords sits at (z_k -+ 1)/2 in parent coords
        np.testing.assert_allclose(children[:Q], f((zq - 1) / 2), atol=1e-10)
        np.testing.assert_allclose(children[Q:], f((zq + 1) / 2), atol=1e-10)

    def test_m2m_preserves_moment(self):
        """Anterpolation preserves the total 'mass' carried upward."""
        rng = np.random.default_rng(0)
        child = rng.standard_normal(16)
        parent = ops.m2m_matrix(8) @ child
        assert parent.sum() == pytest.approx(child.sum())


class TestM2L:
    def test_level_tensor_shape(self):
        K = ops.m2l_level_tensor(4, P=8, Q=6, N=2048)
        assert K.shape == (7, 2, 3, 6, 6)

    def test_base_tensor_shape(self):
        K = ops.m2l_base_tensor(3, P=8, Q=6, N=2048)
        assert K.shape == (7, 5, 6, 6)

    def test_level_entries(self):
        """Spot-check the formula against Section 4.7."""
        level, P, Q, N = 3, 4, 3, 1024
        K = ops.m2l_level_tensor(level, P, Q, N)
        zq = cheb_points(Q)
        p, parity, si, i, j = 2, 0, 1, 1, 2  # s = +2 for even boxes
        s = 2.0
        expect = 1.0 / np.tan(
            np.pi / 2**level * (zq[j] / 2 - zq[i] / 2 + s) + np.pi * (p + 1) / N
        )
        assert K[p, parity, si, i, j] == pytest.approx(expect)

    def test_level_requires_8_boxes(self):
        with pytest.raises(ParameterError):
            ops.m2l_level_tensor(2, P=4, Q=4, N=256)

    def test_finite(self):
        K = ops.m2l_base_tensor(4, P=16, Q=16, N=1 << 14)
        assert np.isfinite(K).all()


class TestS2T:
    def test_lag_vector_shape(self):
        lags = ops.s2t_lags(P=8, ML=16, N=2048)
        assert lags.shape == (7, 4 * 16 - 1)

    def test_matrix_shape(self):
        K = ops.s2t_matrix(P=8, ML=16, N=2048)
        assert K.shape == (7, 16, 48)

    def test_toeplitz_structure(self):
        """K[p, i, j'] depends only on j' - i."""
        K = ops.s2t_matrix(P=4, ML=8, N=256)
        for d in range(-3, 4):
            vals = [K[1, i, i + 8 + d] for i in range(3)]
            assert np.ptp(vals) < 1e-14

    def test_matches_paper_definition(self):
        """S2T[p, k] = cot(pi (p + P k)/N) for flattened lag k."""
        P, ML, N = 4, 8, 256
        M = N // P
        K = ops.s2t_matrix(P, ML, N)
        p, i, jp = 2, 3, 17
        k = jp - ML - i
        expect = 1.0 / np.tan(np.pi * (p + P * k) / N)
        assert K[p - 1, i, jp] == pytest.approx(expect)


class TestRho:
    def test_values(self):
        """rho_p = exp(-i pi p/P) sin(pi p/P)/M."""
        rho = ops.rho_factors(P=8, M=64)
        p = 3
        expect = np.exp(-1j * np.pi * p / 8) * np.sin(np.pi * p / 8) / 64
        assert rho[p - 1] == pytest.approx(expect)

    def test_length(self):
        assert ops.rho_factors(P=16, M=4).shape == (15,)


class TestFmmOperatorsBundle:
    def test_create_and_fields(self):
        b = FmmOperators.create(M=256, P=4, ML=16, B=2, Q=8)
        assert b.s2m.shape == (8, 16)
        assert b.m2m.shape == (8, 16)
        assert set(b.m2l_level) == {4, 3}
        assert b.m2l_base.shape == (3, 1, 8, 8)
        assert b.s2t.shape == (3, 16, 48)
        assert b.rho.shape == (3,)
        assert b.N == 1024

    def test_single_precision(self):
        b = FmmOperators.create(M=64, P=4, ML=16, B=2, Q=8, dtype="complex64")
        assert b.s2m.dtype == np.float32
        assert b.rho.dtype == np.complex64

    def test_rejects_p1(self):
        with pytest.raises(ParameterError):
            FmmOperators.create(M=64, P=1, ML=16, B=2, Q=8)

    def test_operator_bytes_positive(self):
        b = FmmOperators.create(M=256, P=4, ML=16, B=2, Q=8)
        assert b.operator_bytes() > 0

    def test_geometry_view(self):
        b = FmmOperators.create(M=256, P=4, ML=16, B=2, Q=8)
        g = b.geometry
        assert isinstance(g, FmmGeometry)
        assert (g.M, g.P, g.Q, g.L, g.B) == (256, 4, 8, 4, 2)

    def test_geometry_create_cheap(self):
        g = FmmGeometry.create(M=1 << 20, P=1 << 7, ML=64, B=3, Q=16, G=8)
        assert g.N == 1 << 27
        assert g.L == 14
