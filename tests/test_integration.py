"""End-to-end integration scenarios across the whole stack."""

import numpy as np
import pytest

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node, preset
from repro.model.search import find_fastest, simulate_fft1d, simulate_fmmfft
from repro.util.prng import random_signal, structured_signal


class TestFmmfftVsBaselineNumerics:
    """Both pipelines must produce the same spectrum."""

    @pytest.mark.parametrize("G", [1, 2, 4])
    def test_same_answer(self, G):
        N = 1 << 13
        x = random_signal(N, seed=G)
        plan = FmmFftPlan.create(N=N, P=32, ML=16, B=3, Q=16, G=G)
        cl1 = VirtualCluster(p100_nvlink_node(G))
        fmm_out = FmmFftDistributed(plan, cl1, backend="numpy").run(x)
        cl2 = VirtualCluster(p100_nvlink_node(G))
        base_out = Distributed1DFFT(N, cl2, backend="numpy").run(x)
        assert np.linalg.norm(fmm_out - base_out) / np.linalg.norm(base_out) < 1e-12

    def test_fmmfft_is_faster_in_simulated_time(self):
        N = 1 << 13
        x = random_signal(N, seed=0)
        plan = FmmFftPlan.create(N=N, P=32, ML=16, B=3, Q=16, G=2)
        cl1 = VirtualCluster(dual_p100_nvlink())
        FmmFftDistributed(plan, cl1, backend="numpy").run(x)
        cl2 = VirtualCluster(dual_p100_nvlink())
        Distributed1DFFT(N, cl2, backend="numpy").run(x)
        assert cl1.wall_time() < cl2.wall_time()


class TestExecuteVsTimingConsistency:
    """Timing-only runs must produce the same simulated schedule as
    execute runs (timing is shape-determined)."""

    def test_identical_wall_time(self):
        N = 1 << 13
        plan = FmmFftPlan.create(N=N, P=32, ML=16, B=3, Q=16, G=2)
        cl_e = VirtualCluster(dual_p100_nvlink(), execute=True)
        FmmFftDistributed(plan, cl_e, backend="numpy").run(random_signal(N, seed=1))
        plan_t = FmmFftPlan.create(N=N, P=32, ML=16, B=3, Q=16, G=2,
                                   build_operators=False)
        cl_t = VirtualCluster(dual_p100_nvlink(), execute=False)
        FmmFftDistributed(plan_t, cl_t).run()
        assert cl_e.wall_time() == pytest.approx(cl_t.wall_time(), rel=1e-12)

    def test_identical_ledgers(self):
        N = 1 << 12
        cl_e = VirtualCluster(dual_p100_nvlink(), execute=True)
        Distributed1DFFT(N, cl_e, backend="numpy").run(random_signal(N, seed=2))
        cl_t = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(N, cl_t).run()
        assert len(cl_e.ledger) == len(cl_t.ledger)
        for a, b in zip(cl_e.ledger, cl_t.ledger):
            assert (a.name, a.kind, a.device) == (b.name, b.kind, b.device)
            assert a.start == pytest.approx(b.start)
            assert a.duration == pytest.approx(b.duration)


class TestScalingStudy:
    def test_fmm_scales_with_g(self):
        """'the FMM computation is scaled nearly perfectly' (Sec 6.1)."""
        from repro.fmm.distributed import DistributedFMM
        from repro.fmm.plan import FmmGeometry

        times = {}
        for G in (2, 4, 8):
            geom = FmmGeometry.create(M=1 << 17, P=256, ML=64, B=3, Q=16, G=G)
            cl = VirtualCluster(p100_nvlink_node(G), execute=False)
            DistributedFMM(geom, cl).run(staged=True)
            times[G] = cl.wall_time()
        assert times[4] < 0.65 * times[2]
        assert times[8] < 0.65 * times[4]

    def test_baseline_scales_poorly(self):
        """The transpose-bound baseline gains little from 2 -> 8 GPUs."""
        N = 1 << 26
        t2 = simulate_fft1d(N, p100_nvlink_node(2))
        t8 = simulate_fft1d(N, p100_nvlink_node(8))
        assert t8 > 0.25 * t2  # far from the 4x ideal


class TestSignals:
    """Spectral physics through the full pipeline."""

    def test_tones_detected(self):
        N = 1 << 12
        x = structured_signal(N, kind="tones", seed=3)
        plan = FmmFftPlan.create(N=N, P=16, ML=16, B=2, Q=16)
        spec = np.abs(fmmfft_single(x, plan, backend="numpy"))
        ref = np.abs(np.fft.fft(x))
        np.testing.assert_allclose(spec, ref, atol=1e-8 * ref.max())

    def test_convolution_theorem(self):
        N = 1 << 11
        plan = FmmFftPlan.create(N=N, P=8, ML=16, B=3, Q=16)
        x = random_signal(N, seed=4)
        h = structured_signal(N, kind="gaussian")
        X = fmmfft_single(x, plan, backend="numpy")
        H = fmmfft_single(h, plan, backend="numpy")
        conv_freq = np.fft.ifft(X * H)
        conv_direct = np.fft.ifft(np.fft.fft(x) * np.fft.fft(h))
        np.testing.assert_allclose(conv_freq, conv_direct, atol=1e-9)


class TestSearchEndToEnd:
    def test_search_result_reproducible(self):
        spec = preset("2xP100")
        r1 = find_fastest(1 << 16, spec)
        r2 = find_fastest(1 << 16, spec)
        assert r1.params == r2.params
        assert r1.fmmfft_time == pytest.approx(r2.fmmfft_time)

    def test_simulated_time_deterministic(self):
        spec = preset("8xP100")
        p = dict(P=256, ML=64, B=3, Q=16)
        assert simulate_fmmfft(1 << 22, p, spec) == pytest.approx(
            simulate_fmmfft(1 << 22, p, spec)
        )
