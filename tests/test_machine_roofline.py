import numpy as np
import pytest

from repro.machine.roofline import gemm_performance, gemm_shape_cost, op_time
from repro.machine.spec import K40C, P100
from repro.util.validation import ParameterError


class TestOpTime:
    def test_compute_bound(self):
        # high intensity: time = W / gamma
        t = op_time(P100, flops=1e12, mops=1.0, dtype=np.float64, kind="gemm")
        assert t == pytest.approx(1e12 / P100.gamma_d)

    def test_memory_bound(self):
        # low intensity: time = D / beta
        t = op_time(P100, flops=1.0, mops=3.6e9, dtype=np.float64, kind="gemm")
        assert t == pytest.approx(3.6e9 / P100.beta, rel=1e-6)

    def test_eq3_crossover(self):
        # at intensity gamma/beta the two limits agree
        intensity = P100.gamma_d / P100.beta
        W = 1e9
        D = W / intensity
        t = op_time(P100, W, D, np.float64, kind="gemm")
        assert t == pytest.approx(W / P100.gamma_d)

    def test_zero_work(self):
        assert op_time(P100, 0.0, 0.0, np.float64) == 0.0

    def test_pure_copy(self):
        t = op_time(P100, 0.0, 360e9, np.float64, kind="copy")
        assert t == pytest.approx(1.0)

    def test_batched_derate_applied(self):
        t_plain = op_time(P100, 1e12, 1.0, np.float64, kind="gemm")
        t_batched = op_time(P100, 1e12, 1.0, np.float64, kind="batched_gemm")
        assert t_batched == pytest.approx(t_plain / P100.batched_gemm_derate)

    def test_custom_derate_applied(self):
        t_plain = op_time(P100, 1e12, 1.0, np.float64, kind="gemm")
        t_custom = op_time(P100, 1e12, 1.0, np.float64, kind="custom")
        assert t_custom == pytest.approx(t_plain / P100.custom_kernel_derate)

    def test_single_precision_faster(self):
        td = op_time(P100, 1e12, 1.0, np.complex128, kind="gemm")
        tf = op_time(P100, 1e12, 1.0, np.complex64, kind="gemm")
        assert tf < td

    def test_latency_flag(self):
        base = op_time(P100, 1e9, 1e6, np.float64)
        with_lat = op_time(P100, 1e9, 1e6, np.float64, include_latency=True)
        assert with_lat == pytest.approx(base + P100.launch_latency)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            op_time(P100, -1.0, 0.0, np.float64)

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            op_time(P100, 1.0, 1.0, np.float64, kind="quantum")


class TestGemmShapeCost:
    def test_flops(self):
        f, _ = gemm_shape_cost(4, 5, 6, batch=3, itemsize=8)
        assert f == pytest.approx(2 * 4 * 5 * 6 * 3)

    def test_c_factor_scales(self):
        f1, b1 = gemm_shape_cost(4, 5, 6, 1, 8, c_factor=1)
        f2, b2 = gemm_shape_cost(4, 5, 6, 1, 8, c_factor=2)
        assert f2 == pytest.approx(2 * f1)
        assert b2 > b1


class TestGemmPerformance:
    """The Figure 1 curves."""

    def test_saturates_near_gamma(self):
        perf = gemm_performance(P100, 1024, np.float32)
        assert 0.8 * P100.gamma_f < perf <= P100.gamma_f

    def test_small_sizes_slower(self):
        assert gemm_performance(P100, 32, np.float32) < gemm_performance(
            P100, 512, np.float32
        )

    def test_batched_below_plain_on_k40(self):
        """Fig 1(a): the cuBLAS 8.0 batched deficit."""
        plain = gemm_performance(K40C, 512, np.float32)
        batched = gemm_performance(K40C, 512, np.float32, batched=True)
        assert batched < 0.7 * plain

    def test_batched_tracks_plain_on_p100(self):
        """Fig 1(b): near-parity on P100."""
        plain = gemm_performance(P100, 512, np.float32)
        batched = gemm_performance(P100, 512, np.float32, batched=True)
        assert batched > 0.85 * plain

    def test_double_below_single(self):
        assert gemm_performance(P100, 512, np.float64) < gemm_performance(
            P100, 512, np.float32
        )

    def test_monotone_ramp(self):
        perfs = [gemm_performance(P100, n, np.float64) for n in (16, 64, 256, 1024)]
        assert all(b >= a for a, b in zip(perfs, perfs[1:]))
