import numpy as np
import pytest

from repro.fmm.chebyshev import (
    barycentric_weights,
    cheb_points,
    interp_matrix,
    lagrange_eval,
)


class TestChebPoints:
    def test_count_and_range(self):
        z = cheb_points(8)
        assert z.shape == (8,)
        assert (np.abs(z) < 1.0).all()

    def test_formula(self):
        z = cheb_points(4)
        np.testing.assert_allclose(z[0], np.cos(np.pi / 8))

    def test_decreasing(self):
        z = cheb_points(10)
        assert (np.diff(z) < 0).all()

    def test_symmetric(self):
        z = cheb_points(9)
        np.testing.assert_allclose(z, -z[::-1], atol=1e-15)

    def test_rejects_zero(self):
        with pytest.raises(Exception):
            cheb_points(0)


class TestLagrangeEval:
    def test_cardinal_at_nodes(self):
        """ell_q(z_k) = delta_qk."""
        Q = 7
        L = lagrange_eval(Q, cheb_points(Q))
        np.testing.assert_allclose(L, np.eye(Q), atol=1e-12)

    @pytest.mark.parametrize("Q", [2, 4, 8, 16, 24])
    def test_partition_of_unity(self, Q):
        """Columns sum to 1 — the property REDUCE relies on (Sec 4.8)."""
        z = np.linspace(-1, 1, 37)
        L = lagrange_eval(Q, z)
        np.testing.assert_allclose(L.sum(axis=0), np.ones_like(z), atol=1e-10)

    @pytest.mark.parametrize("deg", [0, 1, 3, 6])
    def test_polynomial_reproduction(self, deg):
        """Interpolation is exact for polynomials of degree < Q."""
        Q = 8
        zq = cheb_points(Q)
        z = np.linspace(-0.9, 0.9, 21)
        L = lagrange_eval(Q, z)
        vals = zq**deg
        np.testing.assert_allclose(vals @ L, z**deg, atol=1e-10)

    def test_interpolation_converges(self):
        """Chebyshev interpolation of a smooth function converges
        geometrically in Q."""
        f = lambda z: np.cos(3 * z) * np.exp(z / 2)
        z = np.linspace(-1, 1, 101)
        errs = []
        for Q in (4, 8, 16):
            L = lagrange_eval(Q, z)
            errs.append(np.abs(f(cheb_points(Q)) @ L - f(z)).max())
        assert errs[1] < errs[0] * 1e-2
        assert errs[2] < errs[1] * 1e-3

    def test_matches_naive_product_form(self):
        Q = 6
        zq = cheb_points(Q)
        z = np.array([-0.3, 0.1, 0.77])
        naive = np.ones((Q, z.size))
        for q in range(Q):
            for k in range(Q):
                if k != q:
                    naive[q] *= (z - zq[k]) / (zq[q] - zq[k])
        np.testing.assert_allclose(lagrange_eval(Q, z), naive, atol=1e-12)

    def test_stable_at_high_q(self):
        """Barycentric form stays bounded at Q = 24 (Fig 9's upper end)."""
        L = lagrange_eval(24, np.linspace(-1, 1, 99))
        assert np.isfinite(L).all()
        assert np.abs(L).max() < 50

    def test_scalar_input(self):
        L = lagrange_eval(4, 0.5)
        assert L.shape == (4, 1)


class TestHelpers:
    def test_weights_alternate_sign(self):
        w = barycentric_weights(6)
        assert (np.sign(w) == [1, -1, 1, -1, 1, -1]).all()

    def test_interp_matrix_is_transpose(self):
        z = np.linspace(-1, 1, 5)
        np.testing.assert_array_equal(interp_matrix(6, z), lagrange_eval(6, z).T)
