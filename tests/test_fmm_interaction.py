import pytest

from repro.fmm.interaction import (
    COUSINS_EVEN,
    COUSINS_ODD,
    base_interaction_list,
    base_offsets,
    coverage_map,
    cousin_offsets,
    interaction_list,
)
from repro.util.validation import ParameterError


class TestOffsets:
    def test_paper_cousin_lists(self):
        """Section 4.7: s = {-2,2,3} (b even), {-3,-2,2} (b odd)."""
        assert cousin_offsets(0) == (-2, 2, 3)
        assert cousin_offsets(1) == (-3, -2, 2)

    def test_bad_parity(self):
        with pytest.raises(ParameterError):
            cousin_offsets(2)

    def test_base_offsets_count(self):
        """2^B - 3 non-neighbours."""
        for B in (2, 3, 4, 5):
            assert len(base_offsets(B)) == (1 << B) - 3

    def test_b2_single_nonneighbour(self):
        """'with B = 2, each box at the base level has only one
        non-neighbor box' (Section 4.7)."""
        assert base_offsets(2) == (2,)


class TestInteractionLists:
    def test_cyclic_wrap(self):
        lst = interaction_list(3, 0)  # 8 boxes, even box
        assert lst == [6, 2, 3]

    def test_odd_box(self):
        assert interaction_list(3, 1) == [6, 7, 3]

    def test_refuses_tiny_levels(self):
        """Cousin offsets alias cyclically below 8 boxes — exactly why
        the base level is dense."""
        with pytest.raises(ParameterError):
            interaction_list(2, 0)

    def test_no_self_or_neighbours(self):
        for level in (3, 4, 5):
            nb = 1 << level
            for b in range(nb):
                for s in interaction_list(level, b):
                    d = min((s - b) % nb, (b - s) % nb)
                    assert d >= 2

    def test_base_interaction_list(self):
        assert base_interaction_list(2, 0) == [2]
        assert sorted(base_interaction_list(3, 0)) == [2, 3, 4, 5, 6]


class TestExactCover:
    """Every ordered leaf pair covered exactly once: the core FMM
    correctness theorem, checked exhaustively."""

    @pytest.mark.parametrize("L,B", [(2, 2), (3, 2), (3, 3), (4, 2), (4, 3), (4, 4), (5, 3), (6, 4)])
    def test_all_pairs_once(self, L, B):
        cover = coverage_map(L, B)
        nleaf = 1 << L
        assert len(cover) == nleaf * nleaf
        assert set(cover.values()) == {1}

    def test_rejects_bad_b(self):
        with pytest.raises(ParameterError):
            coverage_map(3, 4)
