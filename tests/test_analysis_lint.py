"""The AST lint pass: every rule bad/good, pragmas, and a clean tree."""

import os

from repro.analysis.lint import LintIssue, lint_paths, lint_source

HDR = "from __future__ import annotations\n"


def rules(src, path="src/repro/util/x.py"):
    return [i.rule for i in lint_source(path, src)]


class TestFutureAnnotations:
    def test_missing_flagged(self):
        assert rules("x = 1\n") == ["future-annotations"]

    def test_present_ok(self):
        assert rules(HDR + "x = 1\n") == []

    def test_docstring_then_import_ok(self):
        assert rules('"""doc."""\n' + HDR) == []

    def test_empty_module_ok(self):
        assert rules("") == []
        assert rules('"""doc only."""\n') == []

    def test_pragma_waives(self):
        assert rules("# lint: allow-future-annotations\nx = 1\n") == []


class TestBareExcept:
    def test_bare_flagged(self):
        src = HDR + "try:\n    pass\nexcept:\n    pass\n"
        assert rules(src) == ["bare-except"]

    def test_typed_ok(self):
        src = HDR + "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert rules(src) == []

    def test_pragma_waives(self):
        src = HDR + "try:\n    pass\nexcept:  # lint: allow-bare-except\n    pass\n"
        assert rules(src) == []


class TestMutableDefault:
    def test_literal_list_flagged(self):
        assert rules(HDR + "def f(a=[]):\n    pass\n") == ["mutable-default"]

    def test_dict_call_flagged(self):
        assert rules(HDR + "def f(a=dict()):\n    pass\n") == ["mutable-default"]

    def test_kwonly_flagged(self):
        assert rules(HDR + "def f(*, a={}):\n    pass\n") == ["mutable-default"]

    def test_none_ok(self):
        assert rules(HDR + "def f(a=None, b=(), c=3):\n    pass\n") == []


class TestNpFftContainment:
    SRC = HDR + "import numpy as np\ny = np.fft.fft(x)\n"

    def test_flagged_outside_fftcore(self):
        assert rules(self.SRC, "src/repro/util/x.py") == ["np-fft"]

    def test_allowed_in_fftcore(self):
        assert rules(self.SRC, "src/repro/fftcore/oracle.py") == []

    def test_numpy_alias_flagged(self):
        src = HDR + "import numpy\ny = numpy.fft.ifft(x)\n"
        assert rules(src, "src/repro/dfft/x.py") == ["np-fft"]


class TestDtypeDiscipline:
    KP = "src/repro/core/x.py"  # a kernel path

    def test_bare_complex128_flagged_in_kernel_path(self):
        src = HDR + "import numpy as np\na = np.complex128\n"
        assert rules(src, self.KP) == ["dtype-discipline"]

    def test_complex128_ok_outside_kernel_path(self):
        src = HDR + "import numpy as np\na = np.complex128\n"
        assert rules(src, "src/repro/bench/x.py") == []

    def test_complex64_alternative_same_statement_ok(self):
        src = (HDR + "import numpy as np\n"
               "a = np.complex64 if half else np.complex128\n")
        assert rules(src, self.KP) == []

    def test_alloc_without_dtype_flagged(self):
        src = HDR + "import numpy as np\na = np.zeros(n)\n"
        assert rules(src, self.KP) == ["dtype-discipline"]

    def test_alloc_with_dtype_kwarg_ok(self):
        src = HDR + "import numpy as np\na = np.empty(n, dtype=np.float64)\n"
        assert rules(src, self.KP) == []

    def test_alloc_with_positional_dtype_ok(self):
        src = HDR + "import numpy as np\na = np.zeros(n, np.float32)\n"
        assert rules(src, self.KP) == []

    def test_pragma_waives(self):
        src = (HDR + "import numpy as np\n"
               "a = np.zeros(n)  # lint: allow-dtype-discipline\n")
        assert rules(src, self.KP) == []


class TestLaunchDeclares:
    GOOD = HDR + "ev = cl.launch(g, 'k', 'gemm', f, m, dt, reads=['x'], writes=['y'])\n"

    def test_missing_both_flagged(self):
        src = HDR + "ev = cl.launch(g, 'k', 'gemm', f, m, dt)\n"
        assert rules(src) == ["launch-declares"]

    def test_missing_one_flagged(self):
        src = HDR + "ev = cl.sendrecv(a, b, n, 'msg', reads=['x'])\n"
        assert rules(src) == ["launch-declares"]

    def test_both_present_ok(self):
        assert rules(self.GOOD) == []

    def test_collectives_covered(self):
        src = HDR + "evs = cl.alltoall(n, 'a2a')\nevs = cl.allgather(n, 'ag')\n"
        assert rules(src) == ["launch-declares", "launch-declares"]

    def test_unrelated_name_ok(self):
        # only method calls named like comm primitives are checked
        assert rules(HDR + "rocket.launch()\n") == ["launch-declares"]
        assert rules(HDR + "launch()\n") == []


class TestMachinery:
    def test_syntax_error_reported_not_raised(self):
        issues = lint_source("src/repro/x.py", "def f(:\n")
        assert [i.rule for i in issues] == ["syntax"]

    def test_issue_str_is_clickable(self):
        s = str(LintIssue("src/a.py", 3, "np-fft", "msg"))
        assert s.startswith("src/a.py:3: ")

    def test_issues_sorted_by_line(self):
        src = "try:\n    pass\nexcept:\n    pass\ndef f(a=[]):\n    pass\n"
        issues = lint_source("src/repro/util/x.py", src)
        assert [i.line for i in issues] == sorted(i.line for i in issues)


def test_shipped_tree_is_clean():
    """The acceptance gate: the whole src tree lints clean."""
    root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    assert lint_paths([os.path.normpath(root)]) == []


class TestServePlanCache:
    CREATE = HDR + "plan = FmmFftPlan.create(N=16, P=4, ML=2, B=2, Q=4)\n"
    CALL = HDR + "plan = FmmFftPlan(16, 4)\n"

    def test_create_flagged_in_serve(self):
        assert rules(self.CREATE, "src/repro/serve/scheduler.py") == [
            "serve-plan-cache"
        ]

    def test_direct_construction_flagged_in_serve(self):
        assert rules(self.CALL, "src/repro/serve/batcher.py") == [
            "serve-plan-cache"
        ]

    def test_cache_module_exempt(self):
        assert rules(self.CREATE, "src/repro/serve/cache.py") == []

    def test_non_serve_paths_exempt(self):
        assert rules(self.CREATE, "src/repro/core/api.py") == []
        assert rules(self.CREATE, "src/repro/model/search.py") == []

    def test_pragma_waives(self):
        src = HDR + ("plan = FmmFftPlan.create(N=16)"
                     "  # lint: allow-serve-plan-cache\n")
        assert rules(src, "src/repro/serve/scheduler.py") == []

    def test_unrelated_factory_ok(self):
        src = HDR + "plan = PlanCacheFmmFftPlanish.create(N=16)\n"
        assert rules(src, "src/repro/serve/scheduler.py") == []


class TestFaultInjectionSite:
    RAISE = HDR + 'raise CommFailure("a2a", time=0.0)\n'
    DRAW = HDR + 'out = inj.message_outcome(0, 1, "m", 0.5)\n'
    DRAW_COLL = HDR + 'out = inj.collective_outcome("a2a", 0.5)\n'

    def test_commfailure_flagged_outside_allowed_layers(self):
        assert rules(self.RAISE, "src/repro/serve/scheduler.py") == [
            "fault-injection-site"
        ]
        assert rules(self.RAISE, "src/repro/dfft/plan.py") == [
            "fault-injection-site"
        ]

    def test_outcome_draws_flagged_outside_allowed_layers(self):
        assert rules(self.DRAW, "src/repro/serve/scheduler.py") == [
            "fault-injection-site"
        ]
        assert rules(self.DRAW_COLL, "src/repro/core/api.py") == [
            "fault-injection-site"
        ]

    def test_allowed_layers_exempt(self):
        for path in ("src/repro/faults/injector.py",
                     "src/repro/comm/api.py",
                     "src/repro/machine/cluster.py"):
            assert rules(self.RAISE, path) == []
            assert rules(self.DRAW, path) == []

    def test_pragma_waives(self):
        src = HDR + ('raise CommFailure("a2a", time=0.0)'
                     "  # lint: allow-fault-injection-site\n")
        assert rules(src, "src/repro/serve/scheduler.py") == []

    def test_unrelated_attribute_ok(self):
        src = HDR + "out = report.outcome(0)\nx = CommFailureReport()\n"
        assert rules(src, "src/repro/serve/scheduler.py") == []
