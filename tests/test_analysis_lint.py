"""The AST lint pass: every rule bad/good, pragmas, and a clean tree."""

import os

from repro.analysis.lint import LintIssue, lint_paths, lint_source

HDR = "from __future__ import annotations\n"


def rules(src, path="src/repro/util/x.py"):
    return [i.rule for i in lint_source(path, src)]


class TestFutureAnnotations:
    def test_missing_flagged(self):
        assert rules("x = 1\n") == ["future-annotations"]

    def test_present_ok(self):
        assert rules(HDR + "x = 1\n") == []

    def test_docstring_then_import_ok(self):
        assert rules('"""doc."""\n' + HDR) == []

    def test_empty_module_ok(self):
        assert rules("") == []
        assert rules('"""doc only."""\n') == []

    def test_pragma_waives(self):
        assert rules("# lint: allow-future-annotations\nx = 1\n") == []


class TestBareExcept:
    def test_bare_flagged(self):
        src = HDR + "try:\n    pass\nexcept:\n    pass\n"
        assert rules(src) == ["bare-except"]

    def test_typed_ok(self):
        src = HDR + "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert rules(src) == []

    def test_pragma_waives(self):
        src = HDR + "try:\n    pass\nexcept:  # lint: allow-bare-except\n    pass\n"
        assert rules(src) == []


class TestMutableDefault:
    def test_literal_list_flagged(self):
        assert rules(HDR + "def f(a=[]):\n    pass\n") == ["mutable-default"]

    def test_dict_call_flagged(self):
        assert rules(HDR + "def f(a=dict()):\n    pass\n") == ["mutable-default"]

    def test_kwonly_flagged(self):
        assert rules(HDR + "def f(*, a={}):\n    pass\n") == ["mutable-default"]

    def test_none_ok(self):
        assert rules(HDR + "def f(a=None, b=(), c=3):\n    pass\n") == []


class TestNpFftContainment:
    SRC = HDR + "import numpy as np\ny = np.fft.fft(x)\n"

    def test_flagged_outside_fftcore(self):
        assert rules(self.SRC, "src/repro/util/x.py") == ["np-fft"]

    def test_allowed_in_fftcore(self):
        assert rules(self.SRC, "src/repro/fftcore/oracle.py") == []

    def test_numpy_alias_flagged(self):
        src = HDR + "import numpy\ny = numpy.fft.ifft(x)\n"
        assert rules(src, "src/repro/dfft/x.py") == ["np-fft"]


class TestDtypeDiscipline:
    KP = "src/repro/core/x.py"  # a kernel path

    def test_bare_complex128_flagged_in_kernel_path(self):
        src = HDR + "import numpy as np\na = np.complex128\n"
        assert rules(src, self.KP) == ["dtype-discipline"]

    def test_complex128_ok_outside_kernel_path(self):
        src = HDR + "import numpy as np\na = np.complex128\n"
        assert rules(src, "src/repro/bench/x.py") == []

    def test_complex64_alternative_same_statement_ok(self):
        src = (HDR + "import numpy as np\n"
               "a = np.complex64 if half else np.complex128\n")
        assert rules(src, self.KP) == []

    def test_alloc_without_dtype_flagged(self):
        src = HDR + "import numpy as np\na = np.zeros(n)\n"
        assert rules(src, self.KP) == ["dtype-discipline"]

    def test_alloc_with_dtype_kwarg_ok(self):
        src = HDR + "import numpy as np\na = np.empty(n, dtype=np.float64)\n"
        assert rules(src, self.KP) == []

    def test_alloc_with_positional_dtype_ok(self):
        src = HDR + "import numpy as np\na = np.zeros(n, np.float32)\n"
        assert rules(src, self.KP) == []

    def test_pragma_waives(self):
        src = (HDR + "import numpy as np\n"
               "a = np.zeros(n)  # lint: allow-dtype-discipline\n")
        assert rules(src, self.KP) == []


class TestLaunchDeclares:
    GOOD = HDR + "ev = cl.launch(g, 'k', 'gemm', f, m, dt, reads=['x'], writes=['y'])\n"

    def test_missing_both_flagged(self):
        src = HDR + "ev = cl.launch(g, 'k', 'gemm', f, m, dt)\n"
        assert rules(src) == ["launch-declares"]

    def test_missing_one_flagged(self):
        src = HDR + "ev = cl.sendrecv(a, b, n, 'msg', reads=['x'])\n"
        assert rules(src) == ["launch-declares"]

    def test_both_present_ok(self):
        assert rules(self.GOOD) == []

    def test_collectives_covered(self):
        src = HDR + "evs = cl.alltoall(n, 'a2a')\nevs = cl.allgather(n, 'ag')\n"
        assert rules(src) == ["launch-declares", "launch-declares"]

    def test_unrelated_name_ok(self):
        # only method calls named like comm primitives are checked
        assert rules(HDR + "rocket.launch()\n") == ["launch-declares"]
        assert rules(HDR + "launch()\n") == []


class TestMachinery:
    def test_syntax_error_reported_not_raised(self):
        issues = lint_source("src/repro/x.py", "def f(:\n")
        assert [i.rule for i in issues] == ["syntax"]

    def test_issue_str_is_clickable(self):
        s = str(LintIssue("src/a.py", 3, "np-fft", "msg"))
        assert s.startswith("src/a.py:3: ")

    def test_issues_sorted_by_line(self):
        src = "try:\n    pass\nexcept:\n    pass\ndef f(a=[]):\n    pass\n"
        issues = lint_source("src/repro/util/x.py", src)
        assert [i.line for i in issues] == sorted(i.line for i in issues)


def test_shipped_tree_is_clean():
    """The acceptance gate: the whole src tree lints clean."""
    root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    assert lint_paths([os.path.normpath(root)]) == []


class TestServePlanCache:
    CREATE = HDR + "plan = FmmFftPlan.create(N=16, P=4, ML=2, B=2, Q=4)\n"
    CALL = HDR + "plan = FmmFftPlan(16, 4)\n"

    def test_create_flagged_in_serve(self):
        assert rules(self.CREATE, "src/repro/serve/scheduler.py") == [
            "serve-plan-cache"
        ]

    def test_direct_construction_flagged_in_serve(self):
        assert rules(self.CALL, "src/repro/serve/batcher.py") == [
            "serve-plan-cache"
        ]

    def test_cache_module_exempt(self):
        assert rules(self.CREATE, "src/repro/serve/cache.py") == []

    def test_non_serve_paths_exempt(self):
        assert rules(self.CREATE, "src/repro/core/api.py") == []
        assert rules(self.CREATE, "src/repro/model/search.py") == []

    def test_pragma_waives(self):
        src = HDR + ("plan = FmmFftPlan.create(N=16)"
                     "  # lint: allow-serve-plan-cache\n")
        assert rules(src, "src/repro/serve/scheduler.py") == []

    def test_unrelated_factory_ok(self):
        src = HDR + "plan = PlanCacheFmmFftPlanish.create(N=16)\n"
        assert rules(src, "src/repro/serve/scheduler.py") == []


class TestFaultInjectionSite:
    RAISE = HDR + 'raise CommFailure("a2a", time=0.0)\n'
    DRAW = HDR + 'out = inj.message_outcome(0, 1, "m", 0.5)\n'
    DRAW_COLL = HDR + 'out = inj.collective_outcome("a2a", 0.5)\n'

    def test_commfailure_flagged_outside_allowed_layers(self):
        assert rules(self.RAISE, "src/repro/serve/scheduler.py") == [
            "fault-injection-site"
        ]
        assert rules(self.RAISE, "src/repro/dfft/plan.py") == [
            "fault-injection-site"
        ]

    def test_outcome_draws_flagged_outside_allowed_layers(self):
        assert rules(self.DRAW, "src/repro/serve/scheduler.py") == [
            "fault-injection-site"
        ]
        assert rules(self.DRAW_COLL, "src/repro/core/api.py") == [
            "fault-injection-site"
        ]

    def test_allowed_layers_exempt(self):
        for path in ("src/repro/faults/injector.py",
                     "src/repro/comm/api.py",
                     "src/repro/machine/cluster.py"):
            assert rules(self.RAISE, path) == []
            assert rules(self.DRAW, path) == []

    def test_pragma_waives(self):
        src = HDR + ('raise CommFailure("a2a", time=0.0)'
                     "  # lint: allow-fault-injection-site\n")
        assert rules(src, "src/repro/serve/scheduler.py") == []

    def test_unrelated_attribute_ok(self):
        src = HDR + "out = report.outcome(0)\nx = CommFailureReport()\n"
        assert rules(src, "src/repro/serve/scheduler.py") == []


class TestDeterministicTime:
    """Wall clocks and unseeded randomness break replay determinism."""

    PATH = "src/repro/serve/x.py"

    def det(self, src, path=PATH):
        return [i.rule for i in lint_source(path, HDR + src)
                if i.rule == "deterministic-time"]

    def test_wall_clock_flagged(self):
        assert self.det("t = time.time()\n")
        assert self.det("t = time.time_ns()\n")

    def test_perf_counter_ok(self):
        # harness timing is fine; only the wall clock breaks replay
        assert not self.det("t = time.perf_counter()\n")

    def test_datetime_flagged(self):
        assert self.det("t = datetime.now()\n")
        assert self.det("t = datetime.datetime.utcnow()\n")
        assert self.det("d = date.today()\n")

    def test_numpy_global_rng_flagged(self):
        assert self.det("x = np.random.rand(3)\n")
        assert self.det("np.random.seed(0)\n")
        assert self.det("x = np.random.normal(size=4)\n")

    def test_unseeded_default_rng_flagged(self):
        assert self.det("rng = np.random.default_rng()\n")
        assert self.det("rng = np.random.default_rng(None)\n")
        assert self.det("rng = np.random.default_rng(seed=None)\n")

    def test_seeded_default_rng_ok(self):
        assert not self.det("rng = np.random.default_rng(7)\n")
        assert not self.det("rng = np.random.default_rng(seed)\n")
        assert not self.det("rng = np.random.default_rng(seed=cfg.seed)\n")

    def test_stdlib_random_flagged(self):
        assert self.det("x = random.random()\n")
        assert self.det("random.shuffle(xs)\n")
        assert self.det("r = random.Random()\n")

    def test_seeded_stdlib_random_ok(self):
        assert not self.det("r = random.Random(3)\n")

    def test_generator_method_ok(self):
        assert not self.det("x = rng.random()\n")

    def test_prng_module_and_benchmarks_exempt(self):
        assert not self.det("x = np.random.rand(3)\n",
                            path="src/repro/util/prng.py")
        assert not self.det("t = time.time()\n",
                            path="benchmarks/bench_fft.py")

    def test_pragma_waives(self):
        src = "t = time.time()  # lint: allow-deterministic-time\n"
        assert not self.det(src)


class TestTelemetryRegistry:
    COUNTER = HDR + "s = CounterSeries('comm.bytes')\n"
    GAUGE = HDR + "s = GaugeSeries('serve.queue_depth')\n"
    HIST = HDR + "s = telemetry.HistogramSeries('serve.batch_latency')\n"

    def test_direct_construction_flagged(self):
        for src in (self.COUNTER, self.GAUGE, self.HIST):
            assert rules(src, "src/repro/serve/scheduler.py") == [
                "telemetry-registry"
            ], src
            assert rules(src, "src/repro/comm/api.py") == [
                "telemetry-registry"
            ], src

    def test_registry_module_exempt(self):
        for src in (self.COUNTER, self.GAUGE, self.HIST):
            assert rules(src, "src/repro/obs/telemetry.py") == [], src

    def test_registry_lookup_ok(self):
        src = HDR + "s = reg.counter('comm.bytes', {'link_class': 'direct'})\n"
        assert rules(src, "src/repro/comm/api.py") == []

    def test_unrelated_names_ok(self):
        # collections.Counter and lookalike names must not trip it
        src = HDR + "from collections import Counter\nc = Counter()\n"
        assert rules(src, "src/repro/machine/topology.py") == []
        src = HDR + "x = MyCounterSeriesFactory()\n"
        assert rules(src, "src/repro/serve/queue.py") == []

    def test_pragma_waives(self):
        src = HDR + ("s = CounterSeries('x.y')"
                     "  # lint: allow-telemetry-registry\n")
        assert rules(src, "src/repro/serve/scheduler.py") == []


class TestPerRuleWaivers:
    """`# lint: allow-<rule>` suppresses exactly that rule on exactly
    that line — a waiver elsewhere, or for another rule, changes nothing."""

    def waiver_case(self, bad_line, rule, path="src/repro/util/x.py",
                    tail=""):
        """The line must flag bare, pass waived, and flag again when the
        waiver sits on a different line."""
        bare = HDR + bad_line + "\n" + tail
        assert [i.rule for i in lint_source(path, bare)] == [rule]
        waived = HDR + bad_line + f"  # lint: allow-{rule}\n" + tail
        assert lint_source(path, waived) == []
        elsewhere = HDR + bad_line + "\n" + tail + f"# lint: allow-{rule}\n"
        assert [i.rule for i in lint_source(path, elsewhere)] == [rule]

    def test_future_annotations(self):
        # line-1 rule: the pragma must sit on line 1
        assert lint_source("x.py", "x = 1  # lint: allow-future-annotations\n") == []
        got = lint_source("x.py", "x = 1\n# lint: allow-future-annotations\n")
        assert [i.rule for i in got] == ["future-annotations"]

    def test_bare_except(self):
        src = HDR + "try:\n    pass\nexcept:  # lint: allow-bare-except\n    pass\n"
        assert lint_source("x.py", src) == []
        src = HDR + "# lint: allow-bare-except\ntry:\n    pass\nexcept:\n    pass\n"
        assert [i.rule for i in lint_source("x.py", src)] == ["bare-except"]

    def test_mutable_default(self):
        self.waiver_case("def f(a=[]):", "mutable-default",
                         tail="    pass\n")

    def test_np_fft(self):
        self.waiver_case("y = np.fft.fft(x)", "np-fft")

    def test_dtype_discipline(self):
        self.waiver_case("a = np.zeros(4)", "dtype-discipline",
                         path="src/repro/core/x.py")

    def test_launch_declares(self):
        self.waiver_case("cl.launch(op)", "launch-declares")

    def test_raw_comm(self):
        self.waiver_case("cl.sendrecv(0, 1, reads=(), writes=('b',))",
                         "raw-comm", path="src/repro/dfft/x.py")

    def test_serve_plan_cache(self):
        self.waiver_case("p = FmmFftPlan(n=4)", "serve-plan-cache",
                         path="src/repro/serve/x.py")

    def test_fault_injection_site(self):
        self.waiver_case("e = CommFailure('boom')", "fault-injection-site",
                         path="src/repro/serve/x.py")

    def test_deterministic_time(self):
        self.waiver_case("t = time.time()", "deterministic-time",
                         path="src/repro/serve/x.py")

    def test_telemetry_registry(self):
        self.waiver_case("s = GaugeSeries('q.depth')", "telemetry-registry",
                         path="src/repro/serve/x.py")


class TestUnknownWaiver:
    def test_unknown_waiver_is_itself_an_issue(self):
        got = lint_source("x.py", HDR + "x = 1  # lint: allow-bogus-rule\n")
        assert [i.rule for i in got] == ["unknown-waiver"]
        assert "allow-bogus-rule" in got[0].message

    def test_typoed_rule_does_not_silently_waive(self):
        src = HDR + "try:\n    pass\nexcept:  # lint: allow-bare-excpet\n    pass\n"
        got = sorted(i.rule for i in lint_source("x.py", src))
        assert got == ["bare-except", "unknown-waiver"]

    def test_known_waivers_are_not_flagged(self):
        from repro.analysis.lint import RULES
        for rule in RULES:
            src = HDR + f"x = 1  # lint: allow-{rule}\n"
            assert lint_source("x.py", src) == []
