"""The live metrics registry: determinism, merges, snapshots, exporters.

The load-bearing guarantees:

- histogram quantiles are **merge-order invariant and bit-identical**
  (integer bucket counts on a fixed log-spaced grid), so seeded chaos
  replays export byte-identical snapshots;
- the histogram's nearest-rank quantile agrees with the report's exact
  nearest-rank percentile within one bucket's width;
- snapshots round-trip, diff correctly, and render valid Prometheus
  text exposition (validated by the same checker CI runs).
"""

from __future__ import annotations

import itertools
import json
import sys
from pathlib import Path

import pytest

from repro.obs.telemetry import (
    BUCKET_DECADES,
    BUCKET_GROWTH,
    BUCKET_LO,
    BUCKETS_PER_DECADE,
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricsRegistry,
    bucket_bounds,
    diff_snapshots,
    load_snapshot,
    prometheus_text,
)
from repro.serve.stats import _percentiles
import numpy as np
from repro.util.validation import ParameterError

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from check_prometheus import check_exposition  # noqa: E402


class TestBucketGrid:
    def test_fixed_and_deterministic(self):
        b1, b2 = bucket_bounds(), bucket_bounds()
        assert b1 == b2
        assert len(b1) == BUCKETS_PER_DECADE * BUCKET_DECADES + 1
        assert b1[0] == pytest.approx(BUCKET_LO)
        for lo, hi in zip(b1, b1[1:]):
            assert hi / lo == pytest.approx(BUCKET_GROWTH)

    def test_quantile_reports_bucket_upper_bound(self):
        h = HistogramSeries("x.y")
        h.observe(1.0e-3)
        q = h.quantile(0.5)
        assert q in bucket_bounds()
        assert 1.0e-3 <= q <= 1.0e-3 * BUCKET_GROWTH

    def test_overflow_reports_exact_max(self):
        h = HistogramSeries("x.y")
        h.observe(1e5)  # beyond the last finite bound
        assert h.quantile(0.99) == 1e5

    def test_empty_quantile_is_zero(self):
        assert HistogramSeries("x.y").quantile(0.5) == 0.0


class TestRegistry:
    def test_keyed_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("a.b", {"k": "1"})
        assert reg.counter("a.b", {"k": "1"}) is a
        assert reg.counter("a.b", {"k": "2"}) is not a
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ParameterError):
            reg.gauge("a.b")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "UPPER.case", "9leading", "sp ace"):
            with pytest.raises(ParameterError):
                reg.counter(bad)

    def test_counter_rejects_negative(self):
        with pytest.raises(ParameterError):
            MetricsRegistry().counter("a.b").inc(-1.0)

    def test_histogram_rejects_bad_values(self):
        h = MetricsRegistry().histogram("a.b")
        with pytest.raises(ParameterError):
            h.observe(-1.0)
        with pytest.raises(ParameterError):
            h.observe(float("nan"))

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a.b").inc(5.0, t=1.0)
        reg.gauge("c.d").set(2.0, t=1.0)
        reg.histogram("e.f").observe(0.5, t=1.0)
        assert len(reg) == 0
        assert reg.snapshot()["series"] == []

    def test_gauge_decimation_is_deterministic(self):
        g1 = GaugeSeries("q.d", max_samples=8)
        g2 = GaugeSeries("q.d", max_samples=8)
        for i in range(100):
            g1.set(float(i), t=i * 0.5)
            g2.set(float(i), t=i * 0.5)
        assert g1.samples == g2.samples
        assert len(g1.samples) <= 8
        assert g1.value == 99.0  # latest value survives decimation


class TestMergeDeterminism:
    def _shards(self, seed=7, shards=4, per=200):
        g = np.random.default_rng(seed)
        out = []
        for s in range(shards):
            h = HistogramSeries("lat")
            for _ in range(per):
                h.observe(float(g.uniform(1e-6, 10.0)), t=0.0)
            out.append(h)
        return out

    def test_merge_order_invariance_bit_identical(self):
        shards = self._shards()
        results = []
        for perm in itertools.permutations(range(len(shards))):
            total = HistogramSeries("lat")
            for i in perm:
                total.merge(shards[i])
            results.append((total.quantiles(), dict(total.counts),
                            total.count, total.max))
        first = results[0]
        for other in results[1:]:
            assert other == first  # == on floats: bit-identical

    def test_merge_equals_single_stream(self):
        shards = self._shards(seed=11, shards=3)
        merged = HistogramSeries("lat")
        for h in shards:
            merged.merge(h)
        single = HistogramSeries("lat")
        for h in shards:
            for idx, n in h.counts.items():
                single.counts[idx] = single.counts.get(idx, 0) + n
            single.count += h.count
            single.max = max(single.max, h.max)
        assert merged.quantiles() == single.quantiles()

    def test_registry_merge_creates_and_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c.x").inc(2.0, t=1.0)
        b.counter("c.x").inc(3.0, t=2.0)
        b.counter("c.y").inc(1.0, t=2.0)
        a.merge(b)
        assert a.counter("c.x").value == 5.0
        assert a.counter("c.y").value == 1.0


class TestNearestRankAgreement:
    def test_histogram_within_one_bucket_of_exact(self):
        g = np.random.default_rng(3)
        xs = [float(g.uniform(1e-5, 2.0)) for _ in range(500)]
        h = HistogramSeries("lat")
        for x in xs:
            h.observe(x, t=0.0)
        exact = _percentiles(xs)
        hist = h.quantiles()
        for k in ("p50", "p95", "p99"):
            # bucket upper bound: exact <= hist <= exact * growth
            assert exact[k] <= hist[k] * (1 + 1e-12), k
            assert hist[k] <= exact[k] * BUCKET_GROWTH * (1 + 1e-12), k


class TestSnapshots:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c.hits", {"class": "a"}).inc(3.0, t=0.5)
        reg.gauge("g.depth").set(4.0, t=0.25)
        reg.gauge("g.depth").set(2.0, t=0.75)
        h = reg.histogram("h.lat", {"class": "a"})
        for v in (1e-4, 2e-4, 5e-3):
            h.observe(v, t=1.0)
        return reg

    def test_roundtrip(self):
        reg = self._populated()
        snap = reg.snapshot(time=1.0)
        back = MetricsRegistry.from_snapshot(json.loads(json.dumps(snap)))
        assert back.snapshot(time=1.0) == snap

    def test_save_and_load(self, tmp_path):
        reg = self._populated()
        p = tmp_path / "snap.json"
        reg.save(p, time=2.0)
        assert load_snapshot(p) == reg.snapshot(time=2.0)

    def test_diff_counters_and_histograms(self):
        reg = self._populated()
        old = reg.snapshot(time=1.0)
        reg.counter("c.hits", {"class": "a"}).inc(2.0, t=1.5)
        reg.histogram("h.lat", {"class": "a"}).observe(1e-3, t=1.5)
        reg.gauge("g.depth").set(7.0, t=1.5)
        d = diff_snapshots(reg.snapshot(time=2.0), old)
        assert d["kind"] == "telemetry-diff"
        by_name = {(r["name"],): r for r in d["series"]}
        assert by_name[("c.hits",)]["value"] == 2.0
        assert by_name[("h.lat",)]["count"] == 1
        assert by_name[("g.depth",)]["samples"] == [[1.5, 7.0]]

    def test_diff_drops_unchanged_series(self):
        reg = self._populated()
        old = reg.snapshot(time=1.0)
        reg.counter("c.hits", {"class": "a"}).inc(1.0, t=1.5)
        d = diff_snapshots(reg.snapshot(time=2.0), old)
        assert {r["name"] for r in d["series"]} == {"c.hits"}

    def test_diff_rejects_regressions(self):
        reg = self._populated()
        new = reg.snapshot(time=1.0)
        reg.counter("c.hits", {"class": "a"}).inc(1.0, t=1.5)
        old = reg.snapshot(time=2.0)
        with pytest.raises(ParameterError):
            diff_snapshots(new, old)  # counter went backwards

    def test_diff_rejects_vanished_series(self):
        reg = self._populated()
        old = reg.snapshot(time=1.0)
        fresh = MetricsRegistry()
        fresh.counter("other.thing").inc(1.0, t=2.0)
        with pytest.raises(ParameterError):
            diff_snapshots(fresh.snapshot(time=2.0), old)


class TestPrometheus:
    def test_exposition_passes_the_ci_checker(self):
        reg = MetricsRegistry()
        reg.counter("serve.shed", {"class": "interactive"}).inc(2.0, t=1.0)
        reg.counter("serve.shed", {"class": "batch"}).inc(1.0, t=1.0)
        reg.gauge("serve.queue_depth", {"class": "batch"}).set(3.0, t=1.0)
        h = reg.histogram("serve.request_latency", {"class": "batch"})
        for v in (1e-4, 3e-4, 2e-2, 1e9):  # incl. overflow bucket
            h.observe(v, t=1.0)
        text = prometheus_text(reg.snapshot(time=1.0))
        assert check_exposition(text) == []

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("a.b", {"k": 'with"quote\\and\nnewline'}).inc(1.0)
        text = prometheus_text(reg.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert check_exposition(text) == []

    def test_empty_registry_exposes_nothing(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == ""


class TestSeriesClasses:
    def test_kinds(self):
        assert CounterSeries("a.b").kind == "counter"
        assert GaugeSeries("a.b").kind == "gauge"
        assert HistogramSeries("a.b").kind == "histogram"

    def test_histogram_mean(self):
        h = HistogramSeries("a.b")
        h.observe(1.0)
        h.observe(3.0)
        assert h.mean == pytest.approx(2.0)
        assert HistogramSeries("a.b").mean == 0.0
