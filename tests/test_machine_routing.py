"""Routed fabric layer: tables, paths, hop pricing, and the cost-model
regressions fixed alongside it (dead MPI-latency constant, incomplete
``node_of`` misclassification, max-vs-sum diameter latency)."""

import pytest

from repro.machine import routing, topology as topo
from repro.machine.multinode import (
    DEFAULT_NIC,
    DEFAULT_NIC_LATENCY,
    multinode_graph,
    multinode_p100,
    routed_multinode_graph,
    routed_multinode_p100,
)
from repro.machine.routing import Fabric
from repro.machine.spec import (
    ClusterSpec,
    LinkSpec,
    NVLINK_P100_LINK,
    P100,
    dgx1_p100,
)
from repro.util.validation import ParameterError


def flat_graph(nodes=2, gpn=2):
    return multinode_graph(nodes, gpn, NVLINK_P100_LINK, DEFAULT_NIC)


def routed_graph(nodes=5, gpn=2, radix=4, o=1.0):
    return routed_multinode_graph(
        nodes, gpn, NVLINK_P100_LINK, DEFAULT_NIC,
        radix=radix, oversubscription=o)


class TestFabric:
    def test_shape_properties(self):
        fab = Fabric(nic=DEFAULT_NIC, radix=36)
        assert fab.nodes_per_leaf == 18
        assert fab.uplink_bandwidth == 18 * DEFAULT_NIC.bandwidth
        assert fab.leaf_of(17) == 0
        assert fab.leaf_of(18) == 1

    def test_oversubscription_scales_uplink(self):
        full = Fabric(nic=DEFAULT_NIC, radix=8)
        half = Fabric(nic=DEFAULT_NIC, radix=8, oversubscription=2.0)
        assert half.uplink_bandwidth == full.uplink_bandwidth / 2.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            Fabric(nic=DEFAULT_NIC, radix=1)
        with pytest.raises(ParameterError):
            Fabric(nic=DEFAULT_NIC, oversubscription=0.0)
        with pytest.raises(ParameterError):
            Fabric(nic=object())  # no bandwidth/latency


class TestRoutingTable:
    def test_flat_route_is_single_crossbar(self):
        g = flat_graph()
        assert routing.trace_route(g, 0, 2) == ["node:0", "switch", "node:1"]

    def test_same_leaf_route_skips_spine(self):
        g = routed_graph()  # radix 4 -> 2 nodes per leaf
        assert routing.trace_route(g, 0, 2) == ["node:0", "leaf:0", "node:1"]

    def test_cross_leaf_route_traverses_spine(self):
        g = routed_graph()
        assert routing.trace_route(g, 0, 8) == [
            "node:0", "leaf:0", "spine", "leaf:2", "node:4"]

    def test_cross_leaf_flag(self):
        g = routed_graph()
        assert not routing.cross_leaf(g, 0, 2)
        assert routing.cross_leaf(g, 0, 8)
        assert not routing.cross_leaf(flat_graph(), 0, 2)

    def test_unknown_entity_rejected(self):
        with pytest.raises(ParameterError):
            routing.next_hop(flat_graph(), "rack:0", 1)

    def test_single_node_graph_has_no_routes(self):
        with pytest.raises(ParameterError):
            routing.trace_route(dgx1_p100().graph, 0, 4)


class TestHopPricing:
    def test_flat_hops(self):
        hops = routing.route_hops(flat_graph(), 0, 3)
        assert [h.key for h in hops] == [("nic-tx", 0), ("nic-rx", 1)]
        assert hops[0].latency == DEFAULT_NIC.latency
        assert hops[1].latency == 0.0  # no switch silicon in the flat model

    def test_cross_leaf_hops(self):
        g = routed_graph()
        hops = routing.route_hops(g, 0, 8)
        assert [h.key for h in hops] == [
            ("nic-tx", 0), ("up", 0), ("down", 2), ("nic-rx", 4)]

    def test_same_node_pair_has_no_route(self):
        with pytest.raises(ParameterError):
            routing.route_hops(flat_graph(), 0, 1)

    def test_inter_latency_sums_hops(self):
        fab = routing.fabric_of(routed_graph())
        # cross-leaf: MPI + NIC injection + up/down/egress switch exits
        assert routing.inter_latency(routed_graph(), 0, 8) == pytest.approx(
            DEFAULT_NIC_LATENCY + DEFAULT_NIC.latency + 3 * fab.switch_latency)
        assert routing.inter_latency(routed_graph(), 0, 2) == pytest.approx(
            DEFAULT_NIC_LATENCY + DEFAULT_NIC.latency + fab.switch_latency)

    def test_inter_bandwidth_is_bottleneck_segment(self):
        g = routed_graph(o=4.0)  # uplink: 2 * nic / 4 = nic / 2
        assert routing.inter_bandwidth(g, 0, 8) == pytest.approx(
            DEFAULT_NIC.bandwidth / 2.0)
        assert routing.inter_bandwidth(g, 0, 2) == pytest.approx(
            DEFAULT_NIC.bandwidth)


class TestDeadConstantRegression:
    """DEFAULT_NIC_LATENCY used to be defined and never read; inter-node
    messages were charged wire latency only."""

    def test_flat_graph_carries_mpi_latency(self):
        assert routing.mpi_latency(flat_graph()) == DEFAULT_NIC_LATENCY

    def test_pair_latency_includes_mpi_overhead(self):
        g = flat_graph()
        assert topo.pair_latency(g, 0, 2) == pytest.approx(
            DEFAULT_NIC.latency + DEFAULT_NIC_LATENCY)
        # intra-node pairs pay only their NVLink edge
        assert topo.pair_latency(g, 0, 1) == NVLINK_P100_LINK.latency


class TestNodeCoverValidation:
    def test_link_class_rejects_incomplete_node_of(self):
        g = flat_graph()
        g.graph["node_of"] = {d: n for d, n in g.graph["node_of"].items()
                              if d != 3}
        with pytest.raises(ParameterError, match="missing"):
            topo.link_class(g, 0, 3)

    def test_cluster_spec_rejects_incomplete_node_of(self):
        g = flat_graph()
        del g.graph["node_of"][2]
        with pytest.raises(ParameterError, match="missing"):
            ClusterSpec(device=P100, num_devices=4, graph=g, name="broken")

    def test_graphs_without_node_of_pass(self):
        routing.validate_node_cover(dgx1_p100().graph)

    def test_link_class_labels(self):
        g = routed_graph()
        assert topo.link_class(g, 0, 0) == "self"
        assert topo.link_class(g, 0, 1) == "direct"
        assert topo.link_class(g, 0, 2) == "inter-node"
        assert topo.link_class(g, 0, 8) == "inter-node-far"


class TestDiameterLatency:
    def test_sums_route_instead_of_max_hop(self):
        slow_nic = LinkSpec(bandwidth=10e9, latency=20e-6)
        g = routed_multinode_graph(5, 2, NVLINK_P100_LINK, slow_nic, radix=4)
        fab = routing.fabric_of(g)
        want = (DEFAULT_NIC_LATENCY + slow_nic.latency
                + 3 * fab.switch_latency)
        assert routing.worst_route_latency(g) == pytest.approx(want)
        assert topo.diameter_latency(g) == pytest.approx(want)

    def test_single_leaf_pays_one_switch(self):
        slow_nic = LinkSpec(bandwidth=10e9, latency=20e-6)
        g = routed_multinode_graph(2, 2, NVLINK_P100_LINK, slow_nic, radix=4)
        fab = routing.fabric_of(g)
        assert routing.worst_route_latency(g) == pytest.approx(
            DEFAULT_NIC_LATENCY + slow_nic.latency + fab.switch_latency)

    def test_single_node_has_no_inter_routes(self):
        assert routing.worst_route_latency(
            multinode_p100(1, 4).graph) == 0.0

    def test_nvlink_dominates_when_slower(self):
        # NVLink's 8us edge latency exceeds the 5us flat inter-node path
        g = flat_graph()
        assert topo.diameter_latency(g) == NVLINK_P100_LINK.latency


class TestSpecIntegration:
    def test_routed_spec_fingerprint_differs_from_flat(self):
        from repro.machine.spec import spec_fingerprint

        flat = multinode_p100(4, 4)
        routed = routed_multinode_p100(4, 4, radix=8)
        assert spec_fingerprint(flat) != spec_fingerprint(routed)

    def test_oversubscription_in_fingerprint(self):
        from repro.machine.spec import spec_fingerprint

        a = routed_multinode_p100(4, 4, radix=8, oversubscription=1.0)
        b = routed_multinode_p100(4, 4, radix=8, oversubscription=2.0)
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_comm_latency_uses_routed_diameter(self):
        spec = routed_multinode_p100(5, 2, radix=4)
        assert spec.comm_latency() == topo.diameter_latency(spec.graph)
