"""Capture layer: recorded graphs mirror the interpreted run exactly.

The capture proxy must be invisible — the run it observes appends the
same ledger the plain pipeline would — while the graph it produces
accounts for every record, resolves every dependency to a captured
producer, and refuses anything it cannot replay truthfully (foreign
events, fault-injecting clusters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultInjector, LinkFlap
from repro.ir import (
    PIPELINE_NAMES,
    CaptureError,
    capture,
    capture_fft1d,
    capture_pipeline,
)
from repro.ir.graph import OP_COLL, OP_LAUNCH, OP_LOG
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node
from repro.util.validation import ParameterError

N = 1 << 12
SPEC = p100_nvlink_node(2)


def _cluster(name, execute=False):
    spec = p100_nvlink_node(1) if name == "nufft" else SPEC
    return VirtualCluster(spec, execute=execute)


class TestGraphStructure:
    def test_every_pipeline_captures(self):
        for name in PIPELINE_NAMES:
            cl = _cluster(name)
            graph, _ = capture_pipeline(name, cl, N)
            graph.validate()
            assert graph.meta["pipeline"] == name
            assert graph.meta["G"] == cl.G
            assert not graph.meta["executed"]
            assert graph.nodes, name

    def test_records_account_for_the_whole_ledger(self):
        for name in PIPELINE_NAMES:
            cl = _cluster(name)
            graph, _ = capture_pipeline(name, cl, N)
            assert graph.num_records == len(cl.ledger), name

    def test_comm_calls_mirror_the_comm_log(self):
        cl = _cluster("fmmfft")
        graph, _ = capture_pipeline("fmmfft", cl, N)
        assert graph.comm_calls() == list(cl.comm_log)
        assert len([n for n in graph.nodes if n.op == OP_LOG]) == len(
            cl.comm_log
        )

    def test_deps_point_at_captured_producers(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        for i, n in enumerate(graph.nodes):
            for idx, sub, _ in n.deps:
                assert idx < i
                if idx >= 0 and sub >= 0:
                    assert graph.nodes[idx].op == OP_COLL

    def test_launches_carry_declares_and_regions(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        launches = [n for n in graph.nodes if n.op == OP_LAUNCH]
        assert launches
        for n in launches:
            assert n.reads or n.writes
            assert n.region.startswith("fft1d")

    def test_summary_shape(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        s = graph.summary()
        assert s["pipeline"] == "fft1d"
        assert s["nodes"] == len(graph.nodes)
        assert s["records_per_replay"] == graph.num_records
        assert s["buffers"] > 0
        assert s["peak_live_bytes"] is None  # not yet certified

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ParameterError, match="unknown pipeline"):
            capture_pipeline("warp", _cluster("fft1d"), N)


class TestCaptureIsTransparent:
    def test_capture_run_ledger_equals_plain_run(self):
        from repro.dfft.fft1d import Distributed1DFFT

        plain = VirtualCluster(SPEC, execute=False)
        Distributed1DFFT(N, plain, comm_algorithm="bulk").run()
        captured = VirtualCluster(SPEC, execute=False)
        capture_fft1d(captured, N, comm_algorithm="bulk")
        assert captured.ledger.fingerprint() == plain.ledger.fingerprint()

    def test_execute_capture_returns_pipeline_result(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        cl = VirtualCluster(SPEC, execute=True)
        graph, result = capture_fft1d(cl, N, x=x)
        assert graph.meta["executed"]
        np.testing.assert_allclose(result, np.fft.fft(x), rtol=1e-9)


class TestCaptureRefusals:
    def test_fault_cluster_refused(self):
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 5e-3, 7.5e-3),))
        cl = VirtualCluster(SPEC, execute=False, faults=inj)
        with pytest.raises(CaptureError, match="fault"):
            capture_fft1d(cl, N)

    def test_foreign_event_refused(self):
        cl = VirtualCluster(SPEC, execute=False)
        # a real event produced *before* capture starts: its uid names
        # a producer the graph does not contain
        ev = cl.launch(0, "pre", "copy", flops=0.0, mops=8.0,
                       dtype=np.complex128, reads=[], writes=["pre.buf"])

        def run(proxy):
            proxy.launch(0, "inside", "copy", flops=0.0, mops=8.0,
                         dtype=np.complex128, after=[ev],
                         reads=["pre.buf"], writes=["in.buf"])

        with pytest.raises(CaptureError):
            capture(run, cl)

    def test_validate_rejects_forward_dep(self):
        cl = _cluster("fft1d")
        graph, _ = capture_pipeline("fft1d", cl, N)
        bad = graph.nodes[0]
        object.__setattr__(bad, "deps", ((5, -1, True),))
        with pytest.raises(ParameterError, match="does not precede"):
            graph.validate()


class TestGraphKeys:
    def test_key_carries_configuration(self):
        cl = _cluster("fft1d")
        graph, _ = capture_fft1d(cl, N, comm_algorithm="ring")
        assert graph.meta["key"] == (
            "fft1d", N, "complex128", 4, "auto", "ring", 2)

    def test_spec_fingerprint_recorded(self):
        from repro.machine.spec import spec_fingerprint

        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        graph, _ = capture_fft1d(cl, N)
        assert graph.meta["spec_fingerprint"] == spec_fingerprint(cl.spec)
