import numpy as np
import pytest

from repro.fmm import operators as ops
from repro.fmm.symmetry import (
    exchange_matrix,
    m2l_is_persymmetric,
    m2l_unique_entries,
    m2m_matrix_symmetric,
    m2m_plus_from_minus,
    operator_storage_savings,
    s2t_lags_from_half,
    s2t_lags_half,
)


class TestExchange:
    def test_involution(self):
        J = exchange_matrix(6)
        np.testing.assert_array_equal(J @ J, np.eye(6))

    def test_reverses(self):
        J = exchange_matrix(4)
        np.testing.assert_array_equal(J @ np.arange(4.0), [3, 2, 1, 0])


class TestM2MMirror:
    @pytest.mark.parametrize("Q", [2, 4, 8, 16, 24])
    def test_equals_direct_builder(self, Q):
        np.testing.assert_allclose(
            m2m_matrix_symmetric(Q), ops.m2m_matrix(Q), atol=1e-13
        )

    def test_mirror_relation_explicit(self):
        Q = 8
        full = ops.m2m_matrix(Q)
        minus, plus = full[:, :Q], full[:, Q:]
        np.testing.assert_allclose(m2m_plus_from_minus(minus), plus, atol=1e-13)


class TestS2TReversal:
    @pytest.mark.parametrize("P,ML,N", [(4, 8, 512), (8, 16, 2048), (16, 4, 1024), (32, 8, 1 << 13)])
    def test_rebuild_matches_direct(self, P, ML, N):
        np.testing.assert_allclose(
            s2t_lags_from_half(P, ML, N), ops.s2t_lags(P, ML, N), atol=1e-11
        )

    def test_half_generation_is_half(self):
        half = s2t_lags_half(8, 16, 2048)
        assert half.shape[0] == 4  # p = 1..4 of 7 kernels

    def test_paper_identity(self):
        """S2T_{P-p}(k) = -S2T_p(-(k+1)) directly from the cot formula."""
        P, ML, N = 8, 4, 256
        lags = ops.s2t_lags(P, ML, N)
        nlag = lags.shape[1]
        center = 2 * ML - 1
        for p in range(1, P):
            for k in range(-(2 * ML - 1), 2 * ML - 1):
                lhs = lags[(P - p) - 1, center + k]
                rhs = -lags[p - 1, center - (k + 1)]
                assert lhs == pytest.approx(rhs, rel=1e-12), (p, k)


class TestM2LPersymmetry:
    @pytest.mark.parametrize("level", [3, 4, 6])
    def test_level_tensors(self, level):
        K = ops.m2l_level_tensor(level, P=8, Q=10, N=1 << 14)
        assert m2l_is_persymmetric(K)

    @pytest.mark.parametrize("B", [2, 3, 4])
    def test_base_tensors(self, B):
        K = ops.m2l_base_tensor(B, P=8, Q=10, N=1 << 14)
        assert m2l_is_persymmetric(K)

    def test_detects_asymmetry(self):
        K = np.arange(16.0).reshape(4, 4)
        assert not m2l_is_persymmetric(K)

    def test_unique_entry_count(self):
        # pairs (i,j) <-> (Q-1-j, Q-1-i); anti-diagonal fixed
        for Q in (2, 4, 7, 16):
            assert m2l_unique_entries(Q) == (Q * Q + Q) // 2


class TestStorageSavings:
    def test_meaningful_fraction(self):
        s = operator_storage_savings(P=256, ML=64, Q=16, levels=10)
        assert 0.3 < s["total_fraction"] < 0.8

    def test_all_positive(self):
        s = operator_storage_savings(P=16, ML=16, Q=8, levels=3)
        assert all(v > 0 for v in s.values())
