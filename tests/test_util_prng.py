import numpy as np
import pytest

from repro.util.prng import random_signal, structured_signal


class TestRandomSignal:
    def test_deterministic(self):
        a = random_signal(128, seed=7)
        b = random_signal(128, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes(self):
        assert not np.array_equal(random_signal(64, seed=0), random_signal(64, seed=1))

    @pytest.mark.parametrize("dt", ["float32", "float64", "complex64", "complex128"])
    def test_dtype(self, dt):
        x = random_signal(32, dtype=dt)
        assert x.dtype == np.dtype(dt)

    def test_range(self):
        x = random_signal(1000, dtype="complex128", seed=3)
        assert np.abs(x.real).max() <= 1.0
        assert np.abs(x.imag).max() <= 1.0

    def test_real_has_no_imag(self):
        x = random_signal(32, dtype="float64")
        assert x.dtype.kind == "f"


class TestStructuredSignal:
    @pytest.mark.parametrize("kind", ["tones", "chirp", "bandlimited", "gaussian"])
    def test_kinds(self, kind):
        x = structured_signal(256, kind=kind)
        assert x.shape == (256,)
        assert np.isfinite(x).all()

    def test_tones_spectrum_sparse(self):
        x = structured_signal(512, kind="tones", seed=1)
        spec = np.abs(np.fft.fft(x))
        big = (spec > 0.1 * spec.max()).sum()
        assert big <= 5

    def test_bandlimited_is_lowpass(self):
        x = structured_signal(512, kind="bandlimited", seed=1)
        spec = np.abs(np.fft.fft(x))
        assert spec[512 // 4 :].max() < 1e-10 * max(spec.max(), 1.0) + 1e-12

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            structured_signal(64, kind="nope")

    def test_real_dtype(self):
        x = structured_signal(64, kind="gaussian", dtype="float32")
        assert x.dtype == np.float32
