import numpy as np
import pytest

from repro.fmm.operators import rho_factors
from repro.fmm.reference import dense_apply, dense_apply_all, dense_kernel_matrix
from repro.util.validation import ParameterError


class TestKernelMatrix:
    def test_p0_identity(self):
        np.testing.assert_array_equal(dense_kernel_matrix(8, 4, 0), np.eye(8))

    def test_entry_formula(self):
        M, P, p = 16, 4, 2
        C = dense_kernel_matrix(M, P, p)
        m, n = 3, 7
        expect = 1.0 / np.tan(np.pi / M * (n - m) + np.pi * p / (M * P))
        assert C[m, n] == pytest.approx(expect)

    def test_with_rho(self):
        M, P, p = 16, 4, 1
        C = dense_kernel_matrix(M, P, p, with_rho=True)
        Ct = dense_kernel_matrix(M, P, p)
        rho = rho_factors(P, M)[0]
        np.testing.assert_allclose(C, rho * (Ct + 1j), atol=1e-15)

    def test_rejects_bad_p(self):
        with pytest.raises(ParameterError):
            dense_kernel_matrix(8, 4, 4)

    def test_finite_no_poles(self):
        """p >= 1 keeps the cot argument off the poles."""
        for p in range(1, 8):
            assert np.isfinite(dense_kernel_matrix(64, 8, p)).all()

    def test_periodicity(self):
        """cot kernel is cyclic: entry depends on (n - m) mod M."""
        C = dense_kernel_matrix(16, 4, 1)
        assert C[0, 5] == pytest.approx(C[3, 8])
        assert C[0, 15] == pytest.approx(C[1, 0])


class TestDenseApply:
    def test_matches_matrix(self, rng):
        M, P, p = 32, 4, 3
        x = rng.standard_normal(M)
        np.testing.assert_allclose(
            dense_apply(x, M, P, p), dense_kernel_matrix(M, P, p) @ x, atol=1e-12
        )

    def test_batch(self, rng):
        M, P, p = 16, 4, 1
        X = rng.standard_normal((5, M))
        out = dense_apply(X, M, P, p)
        assert out.shape == (5, M)
        np.testing.assert_allclose(out[2], dense_apply(X[2], M, P, p), atol=1e-12)

    def test_shape_check(self):
        with pytest.raises(ParameterError):
            dense_apply(np.zeros(10), 16, 4, 1)


class TestDenseApplyAll:
    def test_structure(self, rng):
        M, P = 32, 4
        S = rng.standard_normal((P, M))
        T, r = dense_apply_all(S, M, P)
        np.testing.assert_array_equal(T[0], S[0])
        np.testing.assert_allclose(r, S[1:].sum(axis=1), atol=1e-12)

    def test_shape_check(self):
        with pytest.raises(ParameterError):
            dense_apply_all(np.zeros((3, 16)), 16, 4)
