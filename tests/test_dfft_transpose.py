import numpy as np
import pytest

from repro.dfft.layout import BlockRows
from repro.dfft.transpose import distributed_transpose
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node
from repro.machine.stream import Event
from repro.util.validation import ParameterError


def _stage(cl, lay, a, key="src"):
    for g, blk in enumerate(lay.scatter(a)):
        cl.dev(g)[key] = blk


@pytest.mark.parametrize("G", [1, 2, 4])
def test_transpose_correct(G, rng):
    cl = VirtualCluster(p100_nvlink_node(G))
    lay = BlockRows(rows=8, cols=12, G=G)
    a = rng.standard_normal((8, 12)) + 1j * rng.standard_normal((8, 12))
    _stage(cl, lay, a)
    distributed_transpose(cl, "src", "dst", lay, np.complex128)
    got = np.vstack(
        [np.asarray(cl.dev(g)["dst"]).reshape(12 // G, 8) for g in range(G)]
    )
    np.testing.assert_allclose(got, a.T)


def test_transpose_in_place_key(rng):
    cl = VirtualCluster(p100_nvlink_node(2))
    lay = BlockRows(rows=4, cols=4, G=2)
    a = rng.standard_normal((4, 4))
    _stage(cl, lay, a, key="x")
    distributed_transpose(cl, "x", "x", lay, np.float64)
    got = np.vstack([np.asarray(cl.dev(g)["x"]) for g in range(2)])
    np.testing.assert_allclose(got, a.T)


def test_double_transpose_is_identity(rng):
    cl = VirtualCluster(p100_nvlink_node(2))
    lay = BlockRows(rows=8, cols=4, G=2)
    a = rng.standard_normal((8, 4))
    _stage(cl, lay, a)
    distributed_transpose(cl, "src", "mid", lay, np.float64)
    distributed_transpose(cl, "mid", "back", lay.transposed(), np.float64)
    got = np.vstack([np.asarray(cl.dev(g)["back"]) for g in range(2)])
    np.testing.assert_allclose(got, a)


class TestTiming:
    def test_comm_bytes_logged(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        lay = BlockRows(rows=1 << 10, cols=1 << 10, G=2)
        for g in range(2):
            cl.dev(g).alloc("src", lay.local_shape(), np.complex128)
        distributed_transpose(cl, "src", "dst", lay, np.complex128, name="t")
        total = cl.ledger.total("comm_bytes", name="t")
        assert total == pytest.approx(2 * lay.alltoall_bytes_sent(16))

    def test_chunking_splits_ops(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        lay = BlockRows(rows=64, cols=64, G=2)
        evs = [Event(0.0)] * 2
        distributed_transpose(
            cl, "s", "d", lay, np.complex128, name="t",
            after_chunks=[[e] for e in [evs, evs, evs, evs]][0:4] and [evs] * 4,
            chunks=4,
        )
        assert len(cl.ledger.records(name="t", device=0)) == 4

    def test_after_chunks_length_checked(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        lay = BlockRows(rows=64, cols=64, G=2)
        with pytest.raises(ParameterError):
            distributed_transpose(
                cl, "s", "d", lay, np.complex128, after_chunks=[[]], chunks=2
            )

    def test_g_mismatch(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        with pytest.raises(ParameterError):
            distributed_transpose(cl, "s", "d", BlockRows(8, 8, 4), np.complex128)

    def test_g1_charges_local_reorder(self):
        cl = VirtualCluster(p100_nvlink_node(1), execute=False)
        lay = BlockRows(rows=1 << 10, cols=1 << 10, G=1)
        distributed_transpose(cl, "s", "d", lay, np.complex128, name="t")
        recs = cl.ledger.records(name="t.reorder")
        assert recs and recs[0].mops == pytest.approx(2 * lay.local_bytes(16))
