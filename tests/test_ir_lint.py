"""The ``ir-capture-site`` lint rule: IR graphs come from the capture layer."""

from __future__ import annotations

from repro.analysis.lint import RULES, lint_source

HEADER = "from __future__ import annotations\n"


def _rules(path, src):
    return [i.rule for i in lint_source(path, HEADER + src)]


class TestIrCaptureSite:
    def test_node_construction_outside_ir_flagged(self):
        src = "n = IRNode(op='launch', name='x')\n"
        assert "ir-capture-site" in _rules("src/repro/serve/hack.py", src)

    def test_graph_construction_outside_ir_flagged(self):
        src = "g = IRGraph([], {})\n"
        assert "ir-capture-site" in _rules("src/repro/core/hack.py", src)

    def test_attribute_construction_flagged(self):
        src = "import repro.ir.graph as irg\ng = irg.IRGraph([], {})\n"
        assert "ir-capture-site" in _rules("src/repro/dfft/hack.py", src)

    def test_inside_repro_ir_allowed(self):
        src = "n = IRNode(op='launch', name='x')\ng = IRGraph([n], {})\n"
        assert "ir-capture-site" not in _rules("src/repro/ir/fuse.py", src)

    def test_name_reference_without_call_allowed(self):
        src = "from repro.ir import IRGraph\n\n\ndef f(g: IRGraph):\n    return g\n"
        assert "ir-capture-site" not in _rules("src/repro/serve/ok.py", src)

    def test_waiver_suppresses(self):
        src = "n = IRNode(op='launch')  # lint: allow-ir-capture-site\n"
        assert "ir-capture-site" not in _rules("src/repro/serve/hack.py", src)

    def test_rule_is_registered_and_waivable(self):
        assert "ir-capture-site" in RULES

    def test_misspelled_waiver_reported(self):
        src = "n = IRNode(op='launch')  # lint: allow-ir-capture-sight\n"
        rules = _rules("src/repro/serve/hack.py", src)
        assert "ir-capture-site" in rules  # the typo waives nothing
        assert "unknown-waiver" in rules
