"""The shared analysis-findings schema: envelope, conversions, I/O."""

import pytest

from repro.analysis.findings import (
    SCHEMA_KIND,
    SCHEMA_VERSION,
    Finding,
    finding_context,
    findings_doc,
    from_hazards,
    from_lint,
    load_findings,
    write_findings,
)
from repro.analysis.hazards import HazardReport
from repro.analysis.lint import LintIssue


def mk(rule="deadlock-cycle", severity="error", **kw):
    return Finding(tool="plancheck", rule=rule, severity=severity,
                   message="msg", **kw)


class TestFinding:
    def test_category_is_first_dash_token(self):
        assert mk("deadlock-cycle").category == "deadlock"
        assert mk("conservation-missing").category == "conservation"
        assert mk("liveness-undefined-read").category == "liveness"
        assert mk("syntax").category == "syntax"

    def test_str_with_location_is_clickable(self):
        f = mk(rule="np-fft", file="src/x.py", line=7)
        assert str(f).startswith("src/x.py:7: ")
        assert "[plancheck/np-fft]" in str(f)

    def test_str_without_location_omits_prefix(self):
        assert str(mk()) == "[plancheck/deadlock-cycle] msg"

    def test_to_json_context_becomes_dict(self):
        f = mk(context=finding_context(G=8, kind="alltoall"))
        assert f.to_json()["context"] == {"G": 8, "kind": "alltoall"}

    def test_context_pairs_sorted_and_hashable(self):
        c = finding_context(b=2, a=1)
        assert c == (("a", 1), ("b", 2))
        hash(mk(context=c))  # frozen dataclass stays hashable


class TestEnvelope:
    def test_doc_counts(self):
        doc = findings_doc([mk(), mk(severity="warning")])
        assert doc["version"] == SCHEMA_VERSION
        assert doc["kind"] == SCHEMA_KIND
        assert doc["count"] == 2
        assert doc["errors"] == 1

    def test_roundtrip(self, tmp_path):
        p = tmp_path / "findings.json"
        write_findings(p, [mk(file="a.py", line=3)])
        doc = load_findings(p)
        assert doc["count"] == 1
        row = doc["findings"][0]
        assert row["rule"] == "deadlock-cycle"
        assert row["file"] == "a.py"
        assert row["line"] == 3

    def test_load_rejects_wrong_envelope(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"version": 999, "kind": "analysis-findings"}')
        with pytest.raises(ValueError):
            load_findings(p)
        p.write_text('[1, 2, 3]')
        with pytest.raises(ValueError):
            load_findings(p)


class TestConversions:
    def test_from_lint(self):
        issues = [LintIssue("src/x.py", 9, "np-fft", "nope")]
        (f,) = from_lint(issues)
        assert (f.tool, f.rule, f.severity) == ("lint", "np-fft", "error")
        assert (f.file, f.line) == ("src/x.py", 9)

    def test_from_hazards_defects(self):
        report = HazardReport(defects=["op ends before it starts"],
                              num_ops=3, num_edges=2)
        (f,) = from_hazards(report, context=finding_context(pipeline="fmmfft"))
        assert f.tool == "hazards"
        assert f.rule == "hazard-defect"
        assert f.category == "hazard"
        assert dict(f.context)["pipeline"] == "fmmfft"

    def test_clean_report_converts_to_nothing(self):
        assert from_hazards(HazardReport(num_ops=5, num_edges=4)) == []
