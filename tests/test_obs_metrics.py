"""Tests for the metrics engine: rollups, overlap, critical path, model join."""

import pytest

from repro.machine.cluster import VirtualCluster
from repro.machine.ledger import Ledger, OpRecord
from repro.machine.spec import preset
from repro.obs.metrics import (
    compute_metrics,
    critical_path,
    join_fmm_model,
    overlap_stats,
    overlap_summary,
    rollup,
)


def rec(**kw):
    base = dict(
        device=0, stream="compute", kind="gemm", name="op",
        start=0.0, duration=1.0,
    )
    base.update(kw)
    return OpRecord(**base)


class TestRollup:
    def test_by_region_groups_and_sorts(self):
        l = Ledger()
        l.append(rec(region="a/x", duration=1.0, flops=2e9))
        l.append(rec(region="a/x", duration=1.0, flops=2e9))
        l.append(rec(region="a/y", duration=0.5))
        l.append(rec(duration=0.25))
        stats = rollup(l, by="region")
        assert [s.key for s in stats] == ["a/x", "a/y", "(unregioned)"]
        assert stats[0].ops == 2
        assert stats[0].time == pytest.approx(2.0)
        assert stats[0].gflops == pytest.approx(2.0)

    def test_depth_truncates_paths(self):
        l = Ledger()
        l.append(rec(region="a/x"))
        l.append(rec(region="a/y"))
        stats = rollup(l, by="region", depth=1)
        assert len(stats) == 1 and stats[0].key == "a"
        assert stats[0].time == pytest.approx(2.0)

    def test_by_name_and_device_filter(self):
        l = Ledger()
        l.append(rec(name="a", device=0))
        l.append(rec(name="a", device=1))
        stats = rollup(l, by="name", device=1)
        assert len(stats) == 1 and stats[0].ops == 1

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            rollup(Ledger(), by="color")


class TestOverlap:
    def _half_hidden(self):
        """Comm [0,2) with compute [1,3): 50% hidden by construction."""
        l = Ledger()
        l.append(rec(stream="comm", kind="comm", name="c",
                     start=0.0, duration=2.0, comm_bytes=8.0, peer=1))
        l.append(rec(kind="fft", name="k", start=1.0, duration=2.0, flops=1.0))
        return l

    def test_known_50_percent_overlap(self):
        s = overlap_stats(self._half_hidden(), 0)
        assert s.comm_busy == pytest.approx(2.0)
        assert s.compute_busy == pytest.approx(2.0)
        assert s.overlap == pytest.approx(1.0)
        assert s.exposed == pytest.approx(1.0)
        assert s.overlap_fraction == pytest.approx(0.5)

    def test_receiver_side_counts_comm_but_not_compute(self):
        s = overlap_stats(self._half_hidden(), 1)
        assert s.comm_busy == pytest.approx(2.0)  # peer of the sendrecv
        assert s.compute_busy == 0.0
        assert s.overlap == 0.0 and s.overlap_fraction == 0.0

    def test_union_not_sum(self):
        l = Ledger()
        # two overlapping comm intervals must union, not double-count
        l.append(rec(stream="comm", kind="comm", name="c1",
                     start=0.0, duration=2.0, comm_bytes=1.0, peer=1))
        l.append(rec(stream="comm", kind="comm", name="c2",
                     start=1.0, duration=2.0, comm_bytes=1.0, peer=1))
        assert overlap_stats(l, 0).comm_busy == pytest.approx(3.0)

    def test_summary_has_aggregate_row(self):
        out = overlap_summary(self._half_hidden(), 2)
        assert [s.device for s in out] == [0, 1, -1]
        assert out[-1].comm_busy == pytest.approx(4.0)
        assert out[-1].overlap == pytest.approx(1.0)


class TestCriticalPath:
    def test_empty_ledger(self):
        p = critical_path(Ledger())
        assert p.ops == [] and p.length == 0.0

    def test_follows_wait_edges(self):
        l = Ledger()
        u0 = l.append(rec(name="a", device=0, start=0.0, duration=1.0))
        l.append(rec(name="b", device=1, start=0.0, duration=0.5))
        l.append(rec(name="c", device=1, start=1.0, duration=2.0, waits=(u0,)))
        p = critical_path(l)
        assert [r.name for r in p.ops] == ["a", "c"]
        assert p.length == pytest.approx(3.0)
        # terminal op is critical; the short op b has slack
        assert p.slack[2] == 0.0
        assert p.slack[1] > 0.0

    def test_idle_gap_accounting(self):
        l = Ledger()
        l.append(rec(name="a", start=0.0, duration=1.0))
        l.append(rec(name="b", start=2.0, duration=1.0))  # 1s gap (barrier)
        p = critical_path(l)
        assert p.idle == pytest.approx(1.0)
        assert p.length == pytest.approx(3.0)

    @pytest.mark.parametrize("pipeline", ["fft1d", "fmmfft"])
    def test_length_equals_wall_time(self, pipeline):
        spec = preset("2xP100")
        cl = VirtualCluster(spec, execute=False)
        if pipeline == "fft1d":
            from repro.dfft.fft1d import Distributed1DFFT

            Distributed1DFFT(1 << 18, cl).run()
        else:
            from repro.core.distributed import FmmFftDistributed
            from repro.core.plan import FmmFftPlan
            from repro.model.search import find_fastest

            r = find_fastest(1 << 18, spec)
            plan = FmmFftPlan.create(N=1 << 18, G=2, build_operators=False,
                                     **r.params)
            FmmFftDistributed(plan, cl).run()
        p = critical_path(cl.ledger)
        assert p.length == pytest.approx(cl.wall_time(), abs=1e-9)
        # every slack is non-negative and the chain's ops are all critical
        assert all(s >= 0.0 for s in p.slack.values())
        assert p.slack[p.ops[-1].uid] == 0.0


class TestModelJoin:
    def test_fmm_stages_join_by_name(self):
        from repro.core.distributed import FmmFftDistributed
        from repro.core.plan import FmmFftPlan
        from repro.model.search import find_fastest

        spec = preset("2xP100")
        r = find_fastest(1 << 18, spec)
        plan = FmmFftPlan.create(N=1 << 18, G=2, build_operators=False,
                                 **r.params)
        cl = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl).run()
        joins = join_fmm_model(cl.ledger, plan.geometry, spec)
        names = {j.stage for j in joins}
        assert "S2M" in names and "S2T" in names and "L2T" in names
        for j in joins:
            # model is an idealized lower bound: efficiency in (0, 1+eps]
            assert 0.0 < j.efficiency <= 1.0 + 1e-9, j


class TestMetricsReport:
    def test_full_report_on_2xP100(self):
        from repro.core.distributed import FmmFftDistributed
        from repro.core.plan import FmmFftPlan
        from repro.model.search import find_fastest

        spec = preset("2xP100")
        r = find_fastest(1 << 18, spec)
        plan = FmmFftPlan.create(N=1 << 18, G=2, build_operators=False,
                                 **r.params)
        cl = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl).run()
        rep = compute_metrics(cl.ledger, spec, geom=plan.geometry)

        assert rep.path.length == pytest.approx(rep.wall_time, abs=1e-9)
        assert 0.0 < rep.overlap_fraction <= 1.0
        assert rep.exposed_comm >= 0.0
        assert rep.model  # the Section-5 join is populated
        # regioned rollup covers the whole run (no unregioned ops)
        assert all(s.key != "(unregioned)" for s in rep.stages)
        assert sum(s.time for s in rep.stages) == pytest.approx(
            sum(s.time for s in rep.names)
        )

        text = rep.render()
        assert "critical path" in text and "Sec. 5" in text

        payload = rep.to_json()
        for key in ("wall_time", "exposed_comm", "overlap_fraction",
                    "critical_path_length", "stages", "model_join", "overlap"):
            assert key in payload
        assert payload["critical_path_length"] == pytest.approx(
            payload["wall_time"], abs=1e-9
        )

    def test_report_without_geometry_skips_model(self):
        from repro.dfft.fft1d import Distributed1DFFT

        spec = preset("2xP100")
        cl = VirtualCluster(spec, execute=False)
        Distributed1DFFT(1 << 16, cl).run()
        rep = compute_metrics(cl.ledger, spec)
        assert rep.model == []
        assert rep.path.length == pytest.approx(rep.wall_time, abs=1e-9)
