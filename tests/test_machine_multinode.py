import numpy as np
import pytest

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.machine.cluster import VirtualCluster
from repro.machine.multinode import DEFAULT_NIC, multinode_graph, multinode_p100
from repro.machine.spec import NVLINK_P100_LINK
from repro.model.search import find_fastest, simulate_fft1d
from repro.util.prng import random_signal
from repro.util.validation import ParameterError


class TestGraph:
    def test_structure(self):
        g = multinode_graph(2, 4, NVLINK_P100_LINK, DEFAULT_NIC)
        assert g.number_of_nodes() == 8
        # intra-node complete, no inter-node edges
        assert g.has_edge(0, 3)
        assert not g.has_edge(3, 4)
        assert g.graph["node_of"][5] == 1

    def test_spec_fields(self):
        spec = multinode_p100(2, gpus_per_node=4)
        assert spec.num_devices == 8
        assert "IB" in spec.name

    def test_rejects_zero_nodes(self):
        with pytest.raises(ParameterError):
            multinode_p100(0)


class TestBandwidths:
    def test_intra_node_pair_is_nvlink(self):
        spec = multinode_p100(2, 4)
        assert spec.pair_bandwidth(0, 1) == pytest.approx(36e9)

    def test_inter_node_pair_is_nic(self):
        spec = multinode_p100(2, 4)
        assert spec.pair_bandwidth(0, 4) == pytest.approx(DEFAULT_NIC.bandwidth)

    def test_alltoall_nic_bound(self):
        """Off-node traffic serializes through the per-node NIC."""
        one = multinode_p100(1, 4)
        two = multinode_p100(2, 4)
        assert two.alltoall_bandwidth() < 0.2 * one.alltoall_bandwidth()

    def test_more_nodes_weaker_alltoall(self):
        bw = [multinode_p100(n, 4).alltoall_bandwidth() for n in (2, 4, 8)]
        assert bw[0] > bw[1] > bw[2]


class TestNumerics:
    def test_distributed_fmmfft_correct_across_nodes(self):
        """Real numerics on a 2-node (8-device) cluster."""
        N = 1 << 13
        plan = FmmFftPlan.create(N=N, P=32, ML=16, B=3, Q=16, G=8)
        cl = VirtualCluster(multinode_p100(2, 4))
        x = random_signal(N, seed=5)
        out = FmmFftDistributed(plan, cl, backend="numpy").run(x)
        ref = np.fft.fft(x)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 2e-14


class TestPaperPrediction:
    def test_relative_performance_improves_across_nodes(self):
        """Section 7: 'the performance on multiple nodes is very likely
        to improve relative performance ... due to higher internode
        communication costs.'"""
        N = 1 << 24
        single = find_fastest(N, multinode_p100(1, 4))
        double = find_fastest(N, multinode_p100(2, 4))
        assert double.speedup > 1.5 * single.speedup
        assert double.speedup > 2.0

    def test_speedup_approaches_comm_reduction_limit(self):
        """On a NIC-bound fabric the FMM-FFT approaches the 3x
        communication-reduction ceiling."""
        r = find_fastest(1 << 26, multinode_p100(4, 4))
        assert 2.2 < r.speedup < 3.2

    def test_baseline_collapses_with_nodes(self):
        N = 1 << 24
        t1 = simulate_fft1d(N, multinode_p100(1, 4))
        t2 = simulate_fft1d(N, multinode_p100(2, 4))
        assert t2 > 3.0 * t1  # more devices, *much* slower baseline
