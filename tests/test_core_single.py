import numpy as np
import pytest

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_relative_error, fmmfft_single
from repro.util.prng import random_signal
from repro.util.validation import ParameterError


class TestAccuracy:
    @pytest.mark.parametrize(
        "N,P,ML,B",
        [
            (4096, 8, 16, 3),
            (4096, 16, 16, 2),
            (4096, 32, 8, 2),
            (1 << 14, 16, 64, 2),
            (1 << 14, 64, 16, 4),
            (1 << 16, 64, 64, 2),
        ],
    )
    def test_double_precision_claim(self, N, P, ML, B):
        """Section 6.1: ~2e-14 relative l2 error in double-complex.

        The paper quotes < 2e-14 for its fastest configurations; we allow
        a small margin since this sweep includes deliberately stressed
        parameter corners (tiny M_L, many kernels at small N).
        """
        plan = FmmFftPlan.create(N=N, P=P, ML=ML, B=B, Q=16)
        x = random_signal(N, "complex128", seed=1)
        err = fmmfft_relative_error(x, plan)
        assert err < 5e-14

    def test_single_precision_claim(self):
        """Section 6.1: < 4e-7 relative l2 error in single-complex."""
        plan = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=8, dtype="complex64")
        x = random_signal(4096, "complex64", seed=2)
        err = fmmfft_relative_error(x, plan)
        assert err < 4e-7

    def test_own_fft_backend_agrees(self):
        """The full pipeline through our Stockham engine (no numpy.fft)."""
        plan = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16)
        x = random_signal(4096, seed=3)
        ours = fmmfft_single(x, plan, backend="auto")
        ref = np.fft.fft(x)
        assert np.linalg.norm(ours - ref) / np.linalg.norm(ref) < 2e-13

    def test_real_input(self):
        plan = FmmFftPlan.create(N=2048, P=8, ML=16, B=2, Q=16)
        x = random_signal(2048, "float64", seed=4)
        out = fmmfft_single(x, plan, backend="numpy")
        ref = np.fft.fft(x)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-13

    def test_impulse(self):
        plan = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=16)
        x = np.zeros(1024, dtype=np.complex128)
        x[5] = 1.0
        out = fmmfft_single(x, plan, backend="numpy")
        np.testing.assert_allclose(out, np.fft.fft(x), atol=1e-12)

    def test_pure_tone_spectrum(self):
        plan = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=16)
        t = np.arange(1024) / 1024
        x = np.exp(2j * np.pi * 100 * t)
        out = fmmfft_single(x, plan, backend="numpy")
        assert np.argmax(np.abs(out)) == 100
        assert abs(out[100]) == pytest.approx(1024, rel=1e-10)

    def test_linearity(self):
        plan = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=16)
        x, y = random_signal(1024, seed=5), random_signal(1024, seed=6)
        fx = fmmfft_single(x, plan, backend="numpy")
        fy = fmmfft_single(y, plan, backend="numpy")
        fxy = fmmfft_single(x + 3j * y, plan, backend="numpy")
        np.testing.assert_allclose(fxy, fx + 3j * fy, atol=1e-9)


class TestQBehaviour:
    def test_error_decreases_with_q(self):
        """Figure 9 (bottom): error falls with Q to a ~1e-15 floor."""
        x = random_signal(4096, seed=7)
        errs = {}
        for Q in (4, 8, 12, 16, 20):
            plan = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=Q)
            errs[Q] = fmmfft_relative_error(x, plan)
        assert errs[8] < errs[4] * 1e-1
        assert errs[16] < errs[8] * 1e-2
        assert errs[20] < 1e-13

    def test_error_floor_at_machine_precision(self):
        """Accuracy does not improve above Q ~ 18 (Section 6.3.4)."""
        x = random_signal(4096, seed=8)
        plan18 = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=18)
        plan24 = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=24)
        e18 = fmmfft_relative_error(x, plan18)
        e24 = fmmfft_relative_error(x, plan24)
        assert e24 > e18 * 0.1  # no order-of-magnitude gain past 18


class TestValidation:
    def test_shape_check(self):
        plan = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=8)
        with pytest.raises(ParameterError):
            fmmfft_single(np.zeros(512, dtype=complex), plan)

    def test_requires_operators(self):
        plan = FmmFftPlan.create(N=1024, P=4, ML=16, B=2, Q=8, build_operators=False)
        with pytest.raises(ParameterError):
            fmmfft_single(np.zeros(1024, dtype=complex), plan)
