import json

import numpy as np
import pytest

from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink


@pytest.fixture
def traced():
    cl = VirtualCluster(dual_p100_nvlink(), execute=False)
    Distributed1DFFT(1 << 16, cl).run()
    return cl


class TestChromeTrace:
    def test_event_per_op(self, traced):
        events = traced.trace().to_chrome_trace()
        assert len(events) == len(traced.ledger)

    def test_event_schema(self, traced):
        ev = traced.trace().to_chrome_trace()[0]
        assert ev["ph"] == "X"
        assert set(ev) >= {"name", "cat", "pid", "tid", "ts", "dur", "args"}

    def test_timestamps_microseconds(self, traced):
        events = traced.trace().to_chrome_trace()
        recs = list(traced.ledger)
        assert events[3]["ts"] == pytest.approx(recs[3].start * 1e6)
        assert events[3]["dur"] == pytest.approx(recs[3].duration * 1e6)

    def test_pids_are_devices(self, traced):
        pids = {e["pid"] for e in traced.trace().to_chrome_trace()}
        assert pids == {0, 1}

    def test_streams_get_distinct_tids(self, traced):
        events = traced.trace().to_chrome_trace()
        by_stream = {}
        for e in events:
            by_stream.setdefault((e["pid"], e["args"]["stream"]), set()).add(e["tid"])
        # each (device, stream) maps to exactly one tid
        assert all(len(tids) == 1 for tids in by_stream.values())

    def test_save_loads_as_json(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        traced.trace().save_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        assert len(doc["traceEvents"]) == len(traced.ledger)
