from pathlib import Path

import pytest

from repro.bench.report import ORDER, available_artifacts, build_report, write_report
from repro.cli import main


@pytest.fixture
def artifact_dir(tmp_path):
    (tmp_path / "fig2_profile.txt").write_text("profile body")
    (tmp_path / "fig1_gemm.txt").write_text("gemm body")
    (tmp_path / "zzz_custom.txt").write_text("custom body")
    return tmp_path


class TestReport:
    def test_order_preferred_then_alpha(self, artifact_dir):
        arts = available_artifacts(artifact_dir)
        assert [a.stem for a in arts] == ["fig1_gemm", "fig2_profile", "zzz_custom"]

    def test_build_contains_bodies(self, artifact_dir):
        text = build_report(artifact_dir)
        assert "gemm body" in text and "custom body" in text
        assert text.startswith("# Benchmark report")

    def test_empty_dir_message(self, tmp_path):
        assert "no artifacts" in build_report(tmp_path)

    def test_write_report(self, artifact_dir, tmp_path):
        out = write_report(tmp_path / "R.md", artifact_dir)
        assert Path(out).read_text().count("## ") == 3

    def test_order_list_covers_figures(self):
        assert "fig9_q_accuracy" in ORDER and "fig3_8xP100_complex128" in ORDER

    def test_cli_report(self, tmp_path, capsys):
        out = tmp_path / "R.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.exists()
