"""Validate a Chrome/Perfetto trace-event JSON file.

Usage: ``python tools/validate_trace.py trace.json [more.json ...]``

Loads each file and runs :func:`repro.obs.perfetto.validate_trace` over
it: document shape, per-phase required fields, non-negative durations,
numeric counters, and flow-event id pairing.  Exit code 1 on any
finding — CI runs this over the traces it exports.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.perfetto import validate_trace  # noqa: E402


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    status = 0
    for arg in argv:
        doc = json.loads(Path(arg).read_text())
        errors = validate_trace(doc)
        n = len(doc["traceEvents"]) if isinstance(doc, dict) else len(doc)
        if errors:
            status = 1
            print(f"{arg}: {len(errors)} problem(s) in {n} events")
            for e in errors[:20]:
                print(f"  - {e}")
        else:
            print(f"{arg}: OK ({n} events)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
