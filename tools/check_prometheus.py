#!/usr/bin/env python
"""Validate a Prometheus text-exposition file; exit 1 on any violation.

Usage::

    python tools/check_prometheus.py serve.prom

CI runs this over the ``repro serve --prom`` output so the exporter in
:mod:`repro.obs.telemetry` cannot drift away from the exposition
grammar (https://prometheus.io/docs/instrumenting/exposition_formats/).
Checks, per metric family:

- every line parses (``# TYPE``/``# HELP`` comments or samples of the
  form ``name{labels} value``);
- a ``# TYPE`` line precedes the family's first sample and names a
  known type (counter / gauge / histogram);
- metric and label names match the Prometheus grammar;
- histogram families have, per label set: monotonically non-decreasing
  cumulative ``_bucket`` counts over increasing ``le``, a ``+Inf``
  bucket, a ``_sum`` sample, and a ``_count`` equal to the ``+Inf``
  bucket's value;
- no duplicate samples (same name + label set twice).
"""

from __future__ import annotations

import argparse
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)
LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_value(text: str) -> float:
    """Parse a sample value (decimal, scientific, or +/-Inf/NaN)."""
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return float("inf")
    if lowered == "-inf":
        return float("-inf")
    if lowered == "nan":
        return float("nan")
    return float(text)


def _parse_labels(text: str | None) -> dict[str, str] | None:
    """Parse the inside of a ``{...}`` label block; None on bad syntax."""
    if text is None or text == "":
        return {}
    out: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        m = LABEL_PAIR_RE.match(text, pos)
        if m is None:
            return None
        key = m.group("key")
        if key in out:
            return None
        out[key] = m.group("val")
        pos = m.end()
    return out


def _family(name: str) -> str:
    """Strip histogram sample suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_exposition(text: str) -> list[str]:
    """All grammar/consistency violations in an exposition document."""
    errors: list[str] = []
    types: dict[str, str] = {}
    seen_samples: set[tuple] = set()
    # family -> label-key (minus 'le') -> list of (le, value)
    buckets: dict[str, dict[tuple, list[tuple[float, float]]]] = {}
    sums: dict[str, set[tuple]] = {}
    counts: dict[str, dict[tuple, float]] = {}

    for ln, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not METRIC_RE.match(parts[2]):
                    errors.append(f"line {ln}: malformed {parts[1]} comment")
                elif parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in KNOWN_TYPES:
                        errors.append(
                            f"line {ln}: unknown TYPE "
                            f"{parts[3] if len(parts) > 3 else '<missing>'!r}"
                        )
                    elif parts[2] in types:
                        errors.append(f"line {ln}: duplicate TYPE for {parts[2]}")
                    else:
                        types[parts[2]] = parts[3]
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {ln}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        labels = _parse_labels(m.group("labels"))
        if labels is None:
            errors.append(f"line {ln}: malformed label block in {line!r}")
            continue
        for k in labels:
            if not LABEL_RE.match(k):
                errors.append(f"line {ln}: bad label name {k!r}")
        try:
            value = _parse_value(m.group("value"))
        except ValueError:
            errors.append(f"line {ln}: bad sample value {m.group('value')!r}")
            continue
        fam = _family(name)
        declared = types.get(fam) or types.get(name)
        if declared is None:
            errors.append(f"line {ln}: sample {name!r} precedes its TYPE line")
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            errors.append(f"line {ln}: duplicate sample {name}{labels!r}")
        seen_samples.add(key)
        if declared == "histogram":
            base = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {ln}: _bucket sample without le")
                    continue
                le = _parse_value(labels["le"])
                buckets.setdefault(fam, {}).setdefault(base, []).append(
                    (le, value))
            elif name.endswith("_sum"):
                sums.setdefault(fam, set()).add(base)
            elif name.endswith("_count"):
                counts.setdefault(fam, {})[base] = value
            else:
                errors.append(
                    f"line {ln}: bare sample {name!r} in histogram family")

    for fam, by_labels in buckets.items():
        for base, pairs in by_labels.items():
            lbl = dict(base)
            prev = -1.0
            for le, v in pairs:  # exposition order
                if v < prev:
                    errors.append(
                        f"{fam}{lbl}: bucket counts not cumulative at le={le:g}")
                prev = v
            les = [le for le, _ in pairs]
            if les != sorted(les):
                errors.append(f"{fam}{lbl}: le values out of order")
            if not any(le == float("inf") for le in les):
                errors.append(f"{fam}{lbl}: missing +Inf bucket")
            else:
                inf_v = [v for le, v in pairs if le == float("inf")][-1]
                if base not in counts.get(fam, {}):
                    errors.append(f"{fam}{lbl}: missing _count sample")
                elif counts[fam][base] != inf_v:
                    errors.append(
                        f"{fam}{lbl}: _count {counts[fam][base]:g} != "
                        f"+Inf bucket {inf_v:g}")
            if base not in sums.get(fam, set()):
                errors.append(f"{fam}{lbl}: missing _sum sample")
    return errors


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; prints violations and returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="exposition file to validate")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the success line")
    args = parser.parse_args(argv)
    with open(args.path, encoding="utf-8") as fh:
        text = fh.read()
    errors = check_exposition(text)
    for err in errors:
        print(err)
    if errors:
        print(f"check_prometheus: {len(errors)} violation(s) in {args.path}")
        return 1
    if not args.quiet:
        print(f"check_prometheus: ok ({args.path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
