#!/usr/bin/env python
"""Run the repo's AST lint over source trees; exit 1 on any issue.

Usage::

    python tools/lint.py src            # what CI runs
    python tools/lint.py src/repro/dfft tools/lint.py

Rules live in :mod:`repro.analysis.lint`; waive a line with
``# lint: allow-<rule>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.findings import from_lint, write_findings  # noqa: E402
from repro.analysis.lint import lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the success line")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the shared analysis-findings "
                             "JSON document to PATH")
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    issues = lint_paths(args.paths)
    if args.json:
        write_findings(args.json, from_lint(issues))
    for issue in issues:
        print(issue)
    if issues:
        print(f"lint: {len(issues)} issue(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print("lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
